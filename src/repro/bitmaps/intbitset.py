"""Bitset backed by a single arbitrary-precision Python integer.

Bit ``i`` set means "row id ``i`` is a member".  All binary operations
return new ``IntBitset`` instances; in-place variants mutate ``self``.
The underlying integer is exposed as :attr:`bits` so hot loops inside the
evidence engine can drop down to raw ``int`` arithmetic when profiling
says it matters.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class IntBitset:
    """A set of non-negative integers stored as bits of one ``int``."""

    __slots__ = ("bits",)

    def __init__(self, bits: int = 0):
        if bits < 0:
            raise ValueError("IntBitset cannot hold negative bit patterns")
        self.bits = bits

    # -- construction -----------------------------------------------------

    @classmethod
    def from_iterable(cls, items: Iterable[int]) -> "IntBitset":
        """Build a bitset from any iterable of non-negative ints."""
        bits = 0
        for item in items:
            bits |= 1 << item
        return cls(bits)

    @classmethod
    def full(cls, n: int) -> "IntBitset":
        """Return the bitset {0, 1, ..., n-1}."""
        if n < 0:
            raise ValueError("n must be non-negative")
        return cls((1 << n) - 1)

    def copy(self) -> "IntBitset":
        return IntBitset(self.bits)

    # -- element operations ------------------------------------------------

    def add(self, item: int) -> None:
        self.bits |= 1 << item

    def discard(self, item: int) -> None:
        self.bits &= ~(1 << item)

    def __contains__(self, item: int) -> bool:
        return item >= 0 and (self.bits >> item) & 1 == 1

    # -- set algebra ---------------------------------------------------------

    def __and__(self, other: "IntBitset") -> "IntBitset":
        return IntBitset(self.bits & other.bits)

    def __or__(self, other: "IntBitset") -> "IntBitset":
        return IntBitset(self.bits | other.bits)

    def __xor__(self, other: "IntBitset") -> "IntBitset":
        return IntBitset(self.bits ^ other.bits)

    def __sub__(self, other: "IntBitset") -> "IntBitset":
        return IntBitset(self.bits & ~other.bits)

    def __iand__(self, other: "IntBitset") -> "IntBitset":
        self.bits &= other.bits
        return self

    def __ior__(self, other: "IntBitset") -> "IntBitset":
        self.bits |= other.bits
        return self

    def __ixor__(self, other: "IntBitset") -> "IntBitset":
        self.bits ^= other.bits
        return self

    def __isub__(self, other: "IntBitset") -> "IntBitset":
        self.bits &= ~other.bits
        return self

    def intersects(self, other: "IntBitset") -> bool:
        return (self.bits & other.bits) != 0

    def issubset(self, other: "IntBitset") -> bool:
        return (self.bits & ~other.bits) == 0

    def issuperset(self, other: "IntBitset") -> bool:
        return (other.bits & ~self.bits) == 0

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        return self.bits.bit_count()

    def __bool__(self) -> bool:
        return self.bits != 0

    def __iter__(self) -> Iterator[int]:
        """Yield members in ascending order."""
        bits = self.bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    def min(self) -> int:
        """Smallest member; raises ``ValueError`` when empty."""
        if not self.bits:
            raise ValueError("min() of empty bitset")
        return (self.bits & -self.bits).bit_length() - 1

    def max(self) -> int:
        """Largest member; raises ``ValueError`` when empty."""
        if not self.bits:
            raise ValueError("max() of empty bitset")
        return self.bits.bit_length() - 1

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IntBitset):
            return self.bits == other.bits
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.bits)

    def __repr__(self) -> str:
        members = list(self)
        if len(members) > 12:
            head = ", ".join(map(str, members[:12]))
            return f"IntBitset({{{head}, ...}} len={len(members)})"
        return f"IntBitset({{{', '.join(map(str, members))}}})"
