"""Helpers for raw-``int`` bit patterns.

The evidence engine's hot loops operate on raw Python ints (see
:mod:`repro.bitmaps`); these free functions cover the few operations the
``int`` type does not provide directly.
"""

from __future__ import annotations

from typing import Iterable, Iterator


def iter_bits(bits: int) -> Iterator[int]:
    """Yield the positions of set bits in ascending order."""
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low


def bits_from(items: Iterable[int]) -> int:
    """Bit pattern with a set bit per item."""
    bits = 0
    for item in items:
        bits |= 1 << item
    return bits


def popcount(bits: int) -> int:
    """Number of set bits."""
    return bits.bit_count()
