"""``repro-dc doctor``: assemble a diagnostics bundle for offline debugging.

One command collects everything a failure report needs — environment,
metrics, recent traces, session/WAL status, benchmark counters — into a
single JSON document (optionally wrapped in a ``.tar.gz``), so a CI
failure or an operator incident ships one artifact instead of a scavenger
hunt.  Every collector degrades gracefully: an unreachable service or a
missing directory records an ``{"error": ...}`` stanza instead of failing
the bundle, because the doctor runs exactly when things are broken.

Session inspection is strictly **read-only**: it parses the manifest,
lists checkpoints, and decodes the WAL with
:meth:`~repro.durability.wal.WriteAheadLog.read_traced_records` — it must
never use :meth:`DurableSession.recover`, which truncates torn WAL tails
and opens an append handle (destructive on a directory another process
owns, and it would destroy the very evidence being collected).
"""

from __future__ import annotations

import io
import json
import os
import platform
import sys
import tarfile
import time
from typing import Optional

BUNDLE_FORMAT = "3dc-doctor-bundle"
BUNDLE_VERSION = 1

#: Sections every bundle must contain, with their required type.
_REQUIRED_SECTIONS = {
    "format": str,
    "version": int,
    "generated_at": float,
    "environment": dict,
    "session": dict,
    "service": dict,
    "results": dict,
}

#: Cap per-file result payloads so a bundle stays shippable.
_MAX_RESULT_BYTES = 1 << 20


def collect_environment() -> dict:
    """Interpreter, platform, and process facts."""
    return {
        "python": sys.version,
        "executable": sys.executable,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "pid": os.getpid(),
        "cwd": os.getcwd(),
        "argv": list(sys.argv),
    }


def inspect_session(directory) -> dict:
    """Read-only view of a session directory: manifest, checkpoints, WAL.

    Never truncates, never appends — safe against a live writer.
    """
    from repro.durability.session import (
        CHECKPOINT_DIR,
        MANIFEST_NAME,
        WAL_NAME,
    )
    from repro.durability.wal import WriteAheadLog

    directory = os.fspath(directory)
    if not os.path.isdir(directory):
        return {"directory": directory, "error": "no such directory"}
    report: dict = {"directory": directory}
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(manifest_path, encoding="utf-8") as handle:
            report["manifest"] = json.load(handle)
    except (OSError, ValueError) as exc:
        report["manifest"] = {"error": str(exc)}
    if isinstance(report["manifest"], dict) and "error" not in report["manifest"]:
        # Lift the fencing facts: which commit epoch this directory was
        # last writing, and whether a failover fenced it below another.
        from repro.durability.session import INITIAL_EPOCH

        report["epoch"] = report["manifest"].get("epoch", INITIAL_EPOCH)
        report["fenced_below"] = report["manifest"].get("fenced_below")
    checkpoint_dir = os.path.join(directory, CHECKPOINT_DIR)
    try:
        report["checkpoints"] = sorted(os.listdir(checkpoint_dir))
    except OSError:
        report["checkpoints"] = []
    wal_path = os.path.join(directory, WAL_NAME)
    records = WriteAheadLog.read_traced_records(wal_path)
    seqs = [record.get("seq") for record, _ in records]
    traced = [trace_id for _, trace_id in records if trace_id]
    report["wal"] = {
        "path": wal_path,
        "bytes": os.path.getsize(wal_path) if os.path.exists(wal_path) else 0,
        "records": len(records),
        "first_seq": seqs[0] if seqs else None,
        "last_seq": seqs[-1] if seqs else None,
        "traced_records": len(traced),
        "trace_ids": sorted(set(traced)),
    }
    # Epoch census over the frame envelopes: which commit epochs wrote
    # this WAL (empty on a pre-epoch legacy log).  A fencing incident
    # shows up here as frames from more than one epoch.
    from repro.durability.framing import decode_envelopes

    try:
        with open(wal_path, "rb") as handle:
            envelopes, _ = decode_envelopes(handle.read())
    except OSError:
        envelopes = []
    report["wal"]["epochs"] = sorted(
        {env.epoch for env in envelopes if env.epoch is not None}
    )
    return report


def collect_service(url: Optional[str], timeout: float = 5.0) -> dict:
    """Live-service facts: status, metrics text, recent traces.

    An unreachable or half-dead service yields error stanzas, not an
    exception — the doctor must produce a bundle from a corpse too.
    """
    if not url:
        return {"url": None}
    from repro.service.client import ServiceClient, ServiceError

    report: dict = {"url": url}
    client = ServiceClient(base_url=url, timeout=timeout)
    for section, call in (
        ("status", client.status),
        ("metrics_text", client.metrics_text),
        ("debug_trace", client.debug_trace),
    ):
        try:
            report[section] = call()
        except (OSError, ValueError, ServiceError) as exc:
            report[section] = {"error": str(exc)}
    status = report.get("status", {})
    if "error" not in status:
        # Lift the fleet-topology facts to the top so a bundle from a
        # failover incident says at a glance which node this was and how
        # far behind it had fallen.
        report["role"] = status.get("role", "primary")
        report["epoch"] = status.get("epoch")
        report["upstream_url"] = status.get("upstream_url")
        replication = status.get("replication")
        if isinstance(replication, dict):
            report["replication_lag_seq"] = replication.get("lag_seq")
    return report


def collect_results(results_dir: Optional[str]) -> dict:
    """Benchmark counters: every ``*.json`` under ``results_dir``."""
    if not results_dir:
        return {"directory": None, "files": {}}
    results_dir = os.fspath(results_dir)
    report: dict = {"directory": results_dir, "files": {}}
    if not os.path.isdir(results_dir):
        report["error"] = "no such directory"
        return report
    for name in sorted(os.listdir(results_dir)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(results_dir, name)
        try:
            if os.path.getsize(path) > _MAX_RESULT_BYTES:
                report["files"][name] = {"error": "file too large for bundle"}
                continue
            with open(path, encoding="utf-8") as handle:
                report["files"][name] = json.load(handle)
        except (OSError, ValueError) as exc:
            report["files"][name] = {"error": str(exc)}
    return report


def collect_metrics_file(path: Optional[str]) -> Optional[dict]:
    """A previously exported metrics snapshot (``--metrics-out`` file)."""
    if not path:
        return None
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        return {"error": str(exc)}


def build_bundle(
    session_dir: Optional[str] = None,
    url: Optional[str] = None,
    results_dir: Optional[str] = None,
    metrics_path: Optional[str] = None,
) -> dict:
    """Collect every section into one schema-checked bundle dict."""
    bundle = {
        "format": BUNDLE_FORMAT,
        "version": BUNDLE_VERSION,
        "generated_at": time.time(),
        "environment": collect_environment(),
        "session": (
            inspect_session(session_dir) if session_dir
            else {"directory": None}
        ),
        "service": collect_service(url),
        "results": collect_results(results_dir),
    }
    metrics = collect_metrics_file(metrics_path)
    if metrics is not None:
        bundle["metrics_snapshot"] = metrics
    validate_bundle(bundle)
    return bundle


def validate_bundle(bundle: dict) -> None:
    """Schema check: required sections present with the right types.

    :raises ValueError: on any missing or mistyped section.
    """
    if not isinstance(bundle, dict):
        raise ValueError("bundle must be a dict")
    for key, expected in _REQUIRED_SECTIONS.items():
        if key not in bundle:
            raise ValueError(f"bundle is missing required section {key!r}")
        value = bundle[key]
        if expected is float and isinstance(value, int):
            value = float(value)
        if not isinstance(value, expected):
            raise ValueError(
                f"bundle section {key!r} must be {expected.__name__}, "
                f"got {type(value).__name__}"
            )
    if bundle["format"] != BUNDLE_FORMAT:
        raise ValueError(f"unknown bundle format {bundle['format']!r}")
    if bundle["version"] != BUNDLE_VERSION:
        raise ValueError(f"unknown bundle version {bundle['version']!r}")


def write_bundle(bundle: dict, out_path: str) -> str:
    """Write the bundle: plain JSON for ``*.json``, else a ``.tar.gz``
    containing ``bundle.json``.  Returns the path written."""
    validate_bundle(bundle)
    rendered = json.dumps(bundle, indent=2, sort_keys=True) + "\n"
    if out_path.endswith(".json"):
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        return out_path
    data = rendered.encode("utf-8")
    with tarfile.open(out_path, "w:gz") as archive:
        info = tarfile.TarInfo("bundle.json")
        info.size = len(data)
        info.mtime = int(bundle["generated_at"])
        archive.addfile(info, io.BytesIO(data))
    return out_path


def read_bundle(path: str) -> dict:
    """Load (and schema-check) a bundle written by :func:`write_bundle`."""
    if path.endswith(".json"):
        with open(path, encoding="utf-8") as handle:
            bundle = json.load(handle)
    else:
        with tarfile.open(path, "r:gz") as archive:
            member = archive.extractfile("bundle.json")
            if member is None:
                raise ValueError(f"{path} has no bundle.json member")
            bundle = json.load(member)
    validate_bundle(bundle)
    return bundle
