"""repro — 3DC: Discovering Denial Constraints in Dynamic Datasets.

A from-scratch Python reproduction of Pena, Porto & Naumann (ICDE 2024).
The public API centers on :class:`repro.DCDiscoverer`:

    >>> from repro import DCDiscoverer, load_csv
    >>> relation = load_csv("staff.csv")
    >>> discoverer = DCDiscoverer(relation)
    >>> discoverer.fit()                        # static bootstrap
    >>> discoverer.insert([(5, "Ema", 2002, 3, 1)])   # incremental insert
    >>> discoverer.delete([3])                        # incremental delete
    >>> for dc in discoverer.dcs:
    ...     print(dc)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
reproduction of every table and figure of the paper.
"""

from repro.core import (
    DCDiscoverer,
    DiscoveryResult,
    StateFormatError,
    StateVersionError,
    UpdateResult,
    load_state,
    save_state,
)
from repro.durability import DurableSession, SessionError
from repro.dcs import DenialConstraint, approximate_dcs, rank_dcs
from repro.predicates import (
    Operator,
    Predicate,
    PredicateSpace,
    build_predicate_space,
    format_dc,
    parse_dc,
    parse_predicate,
)
from repro.relational import (
    Column,
    ColumnType,
    Relation,
    Schema,
    load_csv,
    relation_from_rows,
    sort_by_numeric_columns,
)
from repro.evidence import EvidenceSet

__version__ = "1.0.0"

__all__ = [
    "DCDiscoverer",
    "DiscoveryResult",
    "DurableSession",
    "SessionError",
    "StateFormatError",
    "StateVersionError",
    "UpdateResult",
    "save_state",
    "load_state",
    "DenialConstraint",
    "approximate_dcs",
    "rank_dcs",
    "Operator",
    "Predicate",
    "PredicateSpace",
    "build_predicate_space",
    "format_dc",
    "parse_dc",
    "parse_predicate",
    "Column",
    "ColumnType",
    "Relation",
    "Schema",
    "load_csv",
    "relation_from_rows",
    "sort_by_numeric_columns",
    "EvidenceSet",
    "__version__",
]
