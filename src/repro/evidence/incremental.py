"""Incremental evidence-set building for inserts (Algorithm 1).

Given a batch ``Δr`` of freshly inserted tuples, compute the incremental
evidence set ``E_Δr`` covering all ordered pairs with at least one tuple in
``Δr``.  Two collection strategies are provided (Figure 9 ablation):

- **Opt** (default): the *i*-th incremental tuple reconciles against the
  static tuples plus only the incremental tuples after it; evidence of the
  swapped pairs is inferred for every partner.  Each unordered pair is
  reconciled once.
- **Base**: every incremental tuple reconciles against the static tuples
  plus *all* other incremental tuples; inference is applied only to the
  pairs with static partners, so pairs inside ``Δr`` are reconciled twice
  (once per direction).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.bitmaps.bitutils import bits_from
from repro.evidence.builder import EvidenceEngineState
from repro.evidence.evidence_set import EvidenceSet
from repro.observability.probe import get_probe
from repro.relational.relation import Relation


def incremental_evidence_for_insert(
    relation: Relation,
    state: EvidenceEngineState,
    delta_rids: Iterable[int],
    infer_within_delta: bool = True,
    workers: int = 1,
    backend: Optional[str] = None,
    executor: Optional[str] = "auto",
    shards: Optional[int] = None,
) -> EvidenceSet:
    """Compute ``E_Δr`` for an insert batch.

    Preconditions: the batch rows are already inserted into ``relation``
    and indexed in ``state.indexes`` (they must be probed as partners of
    each other).  The per-tuple evidence index, when enabled, is extended
    with the contexts of each new tuple.

    :param infer_within_delta: choose the Opt (True) or Base (False)
        strategy described above.
    :param workers: shard ``Δr`` over a process pool when > 1 (0 = one
        worker per CPU); the merged delta is identical to the serial
        result for any worker count.
    :param backend: evidence-kernel backend (``None`` = auto); results
        are identical for any backend.
    :param executor: shard-executor backend (``None``/``"auto"`` = fork
        where available); results are identical for any executor.
    :param shards: pair-grid shard count override (``None`` = derived
        from ``workers``); results are identical for any shard count.
    """
    from repro.evidence import parallel
    from repro.evidence.kernels import make_kernel
    from repro.evidence.kernels.base import ReconcileTask, TupleIndexRecorder

    delta_list = sorted(delta_rids)
    delta_bits = bits_from(delta_list)
    static_bits = relation.alive_bits & ~delta_bits
    evidence_delta = EvidenceSet()
    probe = get_probe()
    if probe is not None:
        probe.inc("evidence.delta_tuples", len(delta_list))

    n_workers = parallel.resolve_workers(workers)
    if parallel.should_parallelize(n_workers, len(delta_list), executor):
        return parallel.parallel_insert_evidence(
            relation, state, delta_list, infer_within_delta, n_workers,
            backend, executor=executor, shards=shards,
        )

    record = state.tuple_index is not None
    tasks = []
    symmetric_bits = None
    if infer_within_delta:
        remaining_delta = delta_bits
        for rid in delta_list:
            remaining_delta &= ~(1 << rid)
            partners = static_bits | remaining_delta
            # Incremental tuples always get an index entry, even with no
            # partners (a batch into an empty relation).
            tasks.append(
                ReconcileTask(rid, partners, partners if record else None)
            )
    else:
        # Pairs with static partners: direct + inferred swap.  Pairs
        # inside the delta: direct only — the partner's own pipeline
        # produces the other direction.  Recording keeps single-owner-
        # per-pair bookkeeping: the static pairs plus the delta partners
        # *after* this tuple.
        symmetric_bits = static_bits
        for rid in delta_list:
            partners = (static_bits | delta_bits) & ~(1 << rid)
            later_delta = delta_bits & ~((1 << (rid + 1)) - 1)
            tasks.append(
                ReconcileTask(
                    rid,
                    partners,
                    (static_bits | later_delta) if record else None,
                )
            )
    kernel = make_kernel(backend, relation, state.space, state.indexes)
    recorder = TupleIndexRecorder(state.tuple_index) if record else None
    kernel.reconcile(
        tasks, evidence_delta, recorder, symmetric_bits=symmetric_bits
    )
    return evidence_delta


def apply_insert_evidence(
    state: EvidenceEngineState, evidence_delta: EvidenceSet
) -> list:
    """Merge ``E_Δr`` into the running evidence set; return the genuinely
    new evidence masks (``E^inc = E_Δr \\ E_r``, Algorithm 2 line 2)."""
    return state.evidence.merge(evidence_delta)
