"""Incremental evidence-set building for inserts (Algorithm 1).

Given a batch ``Δr`` of freshly inserted tuples, compute the incremental
evidence set ``E_Δr`` covering all ordered pairs with at least one tuple in
``Δr``.  Two collection strategies are provided (Figure 9 ablation):

- **Opt** (default): the *i*-th incremental tuple reconciles against the
  static tuples plus only the incremental tuples after it; evidence of the
  swapped pairs is inferred for every partner.  Each unordered pair is
  reconciled once.
- **Base**: every incremental tuple reconciles against the static tuples
  plus *all* other incremental tuples; inference is applied only to the
  pairs with static partners, so pairs inside ``Δr`` are reconciled twice
  (once per direction).
"""

from __future__ import annotations

from typing import Iterable

from repro.bitmaps.bitutils import bits_from
from repro.evidence.builder import EvidenceEngineState, collect_contexts
from repro.evidence.contexts import build_contexts
from repro.evidence.evidence_set import EvidenceSet
from repro.observability.probe import get_probe
from repro.relational.relation import Relation


def incremental_evidence_for_insert(
    relation: Relation,
    state: EvidenceEngineState,
    delta_rids: Iterable[int],
    infer_within_delta: bool = True,
    workers: int = 1,
) -> EvidenceSet:
    """Compute ``E_Δr`` for an insert batch.

    Preconditions: the batch rows are already inserted into ``relation``
    and indexed in ``state.indexes`` (they must be probed as partners of
    each other).  The per-tuple evidence index, when enabled, is extended
    with the contexts of each new tuple.

    :param infer_within_delta: choose the Opt (True) or Base (False)
        strategy described above.
    :param workers: shard ``Δr`` over a process pool when > 1 (0 = one
        worker per CPU); the merged delta is identical to the serial
        result for any worker count.
    """
    from repro.evidence import parallel

    delta_list = sorted(delta_rids)
    delta_bits = bits_from(delta_list)
    static_bits = relation.alive_bits & ~delta_bits
    evidence_delta = EvidenceSet()
    space = state.space
    probe = get_probe()
    if probe is not None:
        probe.inc("evidence.delta_tuples", len(delta_list))

    n_workers = parallel.resolve_workers(workers)
    if parallel.should_parallelize(n_workers, len(delta_list)):
        return parallel.parallel_insert_evidence(
            relation, state, delta_list, infer_within_delta, n_workers
        )

    if infer_within_delta:
        remaining_delta = delta_bits
        for rid in delta_list:
            remaining_delta &= ~(1 << rid)
            partners = static_bits | remaining_delta
            contexts = build_contexts(space, relation, rid, partners, state.indexes)
            collect_contexts(space, contexts, evidence_delta)
            if state.tuple_index is not None:
                state.tuple_index.record_contexts(rid, contexts)
    else:
        for rid in delta_list:
            partners = (static_bits | delta_bits) & ~(1 << rid)
            contexts = build_contexts(space, relation, rid, partners, state.indexes)
            # Pairs with static partners: direct + inferred swap.  Pairs
            # inside the delta: direct only — the partner's own pipeline
            # produces the other direction.
            collect_contexts(
                space, contexts, evidence_delta, symmetric_bits=static_bits
            )
            if state.tuple_index is not None:
                # Record only the statically-owned part so delete
                # bookkeeping stays single-owner-per-pair: the static pairs
                # plus the delta partners *after* this tuple.
                later_delta = delta_bits & ~((1 << (rid + 1)) - 1)
                owned = {
                    evidence: bits & (static_bits | later_delta)
                    for evidence, bits in contexts.items()
                }
                state.tuple_index.record_contexts(rid, owned)

    return evidence_delta


def apply_insert_evidence(
    state: EvidenceEngineState, evidence_delta: EvidenceSet
) -> list:
    """Merge ``E_Δr`` into the running evidence set; return the genuinely
    new evidence masks (``E^inc = E_Δr \\ E_r``, Algorithm 2 line 2)."""
    return state.evidence.merge(evidence_delta)
