"""Shared vocabulary of the shard executors.

A :class:`ShardExecutor` runs a batch of independent evidence *block
specs* (produced by :mod:`repro.evidence.executors.grid`) and returns one
:class:`ShardResult` per spec, **in spec order** regardless of which
worker finished first.  That ordering contract — together with the
sorted-key signed merge in :func:`repro.evidence.parallel.merge_shard_counts`
— is what keeps the final evidence state byte-identical to a serial build
for any executor backend, shard count, and task arrival order.

Executors dispatch specs with *work stealing*: every spec has a "home"
worker (``index % workers``), but an idle worker takes the next pending
spec whichever home it has.  The deviation is counted (``steals``) and
reported through the ``executor.*`` probe metrics; it never affects the
result bytes.

Workers that die mid-shard (crash, kill, injected fault) are survivable:
the executor re-runs the lost spec in the parent process — the block
kernels are pure functions of the shared engine snapshot, so a local
re-run is byte-identical to whatever the dead worker would have produced.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional

from repro.observability import get_logger

logger = get_logger(__name__)

#: Fault point armed by the executor fault-handling tests: fires in a
#: *worker* immediately before it runs a claimed block (the parent never
#: calls it), modeling the worker dying mid-shard.
WORKER_FAULT_POINT = "executor.shard"

#: Fork-shared engine snapshot, set by the fork executor immediately
#: before its worker pool is created and cleared right after the gather.
_SHARD_STATE: Optional[dict] = None


def fork_available() -> bool:
    """Whether fork-based worker pools can run here.

    ``REPRO_FORCE_SPAWN=1`` pretends they cannot — the CI ``distributed``
    job uses it to exercise the spawn code paths on Linux runners.
    """
    if os.environ.get("REPRO_FORCE_SPAWN"):
        return False
    return "fork" in multiprocessing.get_all_start_methods()


@dataclass
class ShardResult:
    """One block's partial evidence plus its accounting.

    ``counts`` is a signed evidence counter — the delete-index strategy
    subtracts stale-pair corrections that another block's additions cover;
    only the merged totals must be non-negative.  ``tuple_records`` carries
    ``(rid, owned_counter, partner_bits)`` entries for the per-tuple
    evidence index when the caller maintains one.
    """

    counts: dict
    tuple_records: list = field(default_factory=list)
    pipelines: int = 0
    pairs: int = 0
    contexts_out: int = 0
    pairs_inferred: int = 0
    duration: float = 0.0
    backend: str = ""
    #: Spec index this result answers (executors fill these in).
    index: int = -1
    #: Worker slot that produced it (-1 = parent ran it locally).
    worker: int = -1


@dataclass
class ExecutorStats:
    """One ``run()``'s dispatch accounting (never part of the result
    bytes; reported through the ``executor.*`` probe metrics)."""

    tasks: int = 0
    steals: int = 0
    bytes_shipped: int = 0
    redispatched: int = 0
    workers: int = 0


class ShardExecutor(ABC):
    """One strategy for running grid block specs against a shared
    engine snapshot."""

    #: Registry name ("serial" / "fork" / "spawn" / "socket").
    name: str = ""

    def __init__(self, workers: int):
        self.workers = max(1, workers)
        self.stats = ExecutorStats()

    @abstractmethod
    def run(self, context: dict, specs: List[dict]) -> List[ShardResult]:
        """Run every spec, returning results in spec order."""

    def _begin(self, n_specs: int, workers: int) -> None:
        self.stats = ExecutorStats(tasks=n_specs, workers=workers)


def shippable_context(context: dict) -> dict:
    """The subset of an engine snapshot that crosses a process boundary.

    The kernel object is dropped — spawned/remote workers rebuild it from
    the backend name so its internal arrays never ride the wire — and the
    parent's armed fault points are carried along so deterministic fault
    injection reaches workers that do not inherit memory by fork.
    """
    from repro.durability.faults import get_injector

    shipped = {
        key: value for key, value in context.items() if key != "kernel"
    }
    shipped["armed_faults"] = dict(get_injector()._armed)
    return shipped


def load_shipped_context(payload: bytes) -> dict:
    """Worker-side inverse of :func:`shippable_context` for pickled
    snapshots (the spawn pool ships bytes)."""
    return install_shipped_context(pickle.loads(payload))


def install_shipped_context(context: dict) -> dict:
    """Re-arm the shipped fault points and rebuild the kernel of a
    snapshot that crossed a process boundary."""
    from repro.durability.faults import get_injector
    from repro.evidence.kernels import make_kernel

    for point, skip in context.pop("armed_faults", {}).items():
        get_injector().arm(point, skip=skip)
    context["kernel"] = make_kernel(
        context.get("backend"),
        context["relation"],
        context["space"],
        context["indexes"],
    )
    return context


def run_local(context: dict, specs_by_index: dict) -> List[ShardResult]:
    """Run the given ``{index: spec}`` blocks in the parent process (the
    degraded-to-serial path after worker loss)."""
    from repro.evidence.executors.grid import run_block

    results = []
    for index in sorted(specs_by_index):
        result = run_block(context, specs_by_index[index])
        result.index = index
        result.worker = -1
        results.append(result)
    return results


class SerialExecutor(ShardExecutor):
    """Runs every block in the calling process.

    No parallelism — this executor exists so the pair-grid decomposition
    itself (block planning, partial merges, record stitching) can run and
    be tested without any process machinery, and as the last-resort
    degradation target of the process-based executors.
    """

    name = "serial"

    def run(self, context: dict, specs: List[dict]) -> List[ShardResult]:
        self._begin(len(specs), workers=1)
        return run_local(context, dict(enumerate(specs)))
