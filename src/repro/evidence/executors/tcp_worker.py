"""Entry point for socket-executor worker processes.

Launched by :class:`repro.evidence.executors.tcp.SocketExecutor` as
``python -m repro.evidence.executors.tcp_worker --connect HOST:PORT
--slot N``.  The worker dials the parent, receives one context frame (the
shipped engine snapshot), then loops: report ready, receive a block spec,
run it, send the result — until the parent says shutdown or the
connection drops.
"""

from __future__ import annotations

import argparse
import os
import socket

from repro.durability.faults import SimulatedCrash, fault_point
from repro.evidence.executors.base import (
    WORKER_FAULT_POINT,
    install_shipped_context,
)
from repro.evidence.executors.grid import run_block
from repro.evidence.executors.wire import (
    WireError,
    recv_message,
    send_message,
)


def serve(sock, slot: int) -> None:
    message, _ = recv_message(sock)
    if message[0] != "context":
        raise WireError(f"expected context frame, got {message[0]!r}")
    state = install_shipped_context(message[1])
    send_message(sock, ("ready", slot))
    while True:
        message, _ = recv_message(sock)
        kind = message[0]
        if kind == "shutdown":
            return
        if kind != "task":  # pragma: no cover - defensive
            raise WireError(f"unexpected frame {kind!r}")
        _, index, spec = message
        try:
            fault_point(WORKER_FAULT_POINT)
            result = run_block(state, spec)
            result.index = index
            result.worker = slot
            send_message(sock, ("done", slot, index, result))
        except SimulatedCrash:
            # Model the worker dying mid-shard: drop the connection cold.
            os._exit(17)
        except BaseException as exc:  # pragma: no cover - defensive
            send_message(sock, ("error", slot, index, repr(exc)))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="tcp_worker")
    parser.add_argument("--connect", required=True, metavar="HOST:PORT")
    parser.add_argument("--slot", type=int, default=0)
    args = parser.parse_args(argv)
    host, _, port = args.connect.rpartition(":")
    with socket.create_connection((host, int(port))) as sock:
        try:
            serve(sock, args.slot)
        except WireError:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
