"""Shard×shard pair-grid decomposition of evidence construction.

Evidence work is inherently pairwise: every maintenance operation —
static build, insert delta, delete batch — reconciles a set of ordered
tuple pairs.  This module decomposes that pair space into a grid: the
alive rid universe is *striped* into ``S`` shards (rid at position ``p``
of the sorted universe belongs to shard ``p % S``), and the pairs are
partitioned into ``S`` intra-shard blocks ``(i, i)`` plus ``S·(S−1)/2``
cross-shard blocks ``(i, j)``, ``i < j``.  Each block is an independent
task: it owns exactly the pairs with one endpoint in shard ``i`` and the
other in shard ``j``, computes their evidence with the same kernels the
serial path uses, and returns a partial signed counter.  Partial counters
merge by multiplicity addition (sorted-key, see
:func:`repro.evidence.parallel.merge_shard_counts`), so the merged
evidence set is *byte-identical to the serial build* for any shard count,
executor backend, and completion order.

Pair ownership inside a block replicates the serial loops exactly:

- **static**: the lower rid of each pair runs the context pipeline, the
  symmetric evidence is inferred — so block ``(i, j)`` emits one task per
  shard-``i`` rid against its later shard-``j`` partners and vice versa;
- **insert (Opt/Base)**: delta rids reconcile against static plus
  later-delta (Opt) or all-other (Base) partners, filtered to the block's
  opposite shard; the diagonal block additionally guarantees the serial
  path's unconditional per-tuple index entry for every delta rid;
- **delete (recompute/index)**: the ``processed`` prefix of the sorted
  batch is a pure function of the batch, so each block recomputes it
  locally; the per-rid atomic parts of the index strategy (owned-pair
  retrieval, stale-pair corrections) cannot be split across partners and
  run in the dying rid's diagonal block.

Block specs are tiny (kind, block coordinates, shard count, the batch rid
list) — workers recompute shard membership from the shared engine
snapshot, which is what keeps the socket executor's shipped bytes small.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bitmaps.bitutils import bits_from, iter_bits
from repro.evidence.executors.base import ShardResult
from repro.evidence.kernels.base import (
    CounterSink,
    ListRecorder,
    ReconcileTask,
)

#: Aim for this many blocks per worker so the work-stealing dispatch has
#: slack to rebalance (the triangular pair counts make blocks uneven).
BLOCKS_PER_WORKER = 2


def grid_shard_count(workers: int, n_items: int, shards=None) -> int:
    """The shard count ``S`` for a run: explicit ``shards`` wins, else the
    smallest ``S`` whose ``S·(S+1)/2`` blocks give every worker
    :data:`BLOCKS_PER_WORKER` steal targets; never more than ``n_items``."""
    if shards is not None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        return max(1, min(shards, n_items))
    size = 1
    while size * (size + 1) // 2 < BLOCKS_PER_WORKER * workers:
        size += 1
    return max(1, min(size, n_items))


def grid_blocks(n_shards: int) -> List[tuple]:
    """The ``S`` intra + ``S·(S−1)/2`` cross block coordinates, diagonal
    first (deterministic; order never affects merged results)."""
    return [
        (i, j) for i in range(n_shards) for j in range(i, n_shards)
    ]


def plan_blocks(kind: str, n_shards: int, **extras) -> List[dict]:
    """Specs for one maintenance operation's full pair grid."""
    return [
        {"kind": kind, "block": block, "n_shards": n_shards, **extras}
        for block in grid_blocks(n_shards)
    ]


def shard_bitmaps(alive_bits: int, n_shards: int) -> List[int]:
    """Striped shard membership bitmaps of the sorted alive universe."""
    bitmaps = [0] * n_shards
    position = 0
    bits = alive_bits
    while bits:
        low = bits & -bits
        bitmaps[position % n_shards] |= low
        bits ^= low
        position += 1
    return bitmaps


def _shards_of(state: dict, n_shards: int) -> List[int]:
    """Per-context memo of :func:`shard_bitmaps` (workers run many blocks
    of the same grid against one snapshot)."""
    cached = state.get("_shard_bitmaps")
    if cached is None or len(cached) != n_shards:
        cached = shard_bitmaps(state["alive_bits"], n_shards)
        state["_shard_bitmaps"] = cached
    return cached


def _sides(block: tuple) -> List[tuple]:
    """The (rid shard, partner shard) orientations a block covers: one for
    a diagonal block, both directions for a cross block."""
    i, j = block
    return [(i, j)] if i == j else [(i, j), (j, i)]


def run_block(state: dict, spec: dict) -> ShardResult:
    """Execute one block spec against the shared engine snapshot.

    Pure: depends only on ``state`` and ``spec``, making parent-side
    re-dispatch after a worker death byte-identical.
    """
    import time

    started = time.perf_counter()
    kind = spec["kind"]
    if kind == "static":
        result = _block_static(state, spec)
    elif kind == "insert_opt":
        result = _block_insert_opt(state, spec)
    elif kind == "insert_base":
        result = _block_insert_base(state, spec)
    elif kind == "delete_index":
        result = _block_delete_index(state, spec)
    elif kind == "delete_recompute":
        result = _block_delete_recompute(state, spec)
    else:
        raise ValueError(f"unknown block kind {kind!r}")
    result.duration = time.perf_counter() - started
    return result


def _run_tasks(state, result, tasks, symmetric_bits=None, recorder=None):
    """Run a block's task batch on the snapshot's kernel, folding the
    evidence into the block's plain counter."""
    kernel = state["kernel"]
    stats = kernel.reconcile(
        tasks, CounterSink(result.counts), recorder, symmetric_bits
    )
    result.backend = kernel.name
    result.pipelines += stats.pipelines
    result.pairs += stats.pairs
    result.contexts_out += stats.contexts_out
    result.pairs_inferred += stats.pairs_inferred


def _block_static(state, spec) -> ShardResult:
    """Static build: each pair's lower rid reconciles, restricted to the
    block's opposite shard."""
    result = ShardResult(counts={})
    shards = _shards_of(state, spec["n_shards"])
    record = state["tuple_index"] is not None
    tasks = []
    for side_rids, side_partners in _sides(spec["block"]):
        partner_shard = shards[side_partners]
        for rid in iter_bits(shards[side_rids]):
            partners = partner_shard & ~((1 << (rid + 1)) - 1)
            # The serial scan records no entry for a rid with no later
            # partners; blocks mirror that per shard (unions match).
            if not partners:
                continue
            tasks.append(
                ReconcileTask(rid, partners, partners if record else None)
            )
    recorder = ListRecorder(result.tuple_records) if record else None
    _run_tasks(state, result, tasks, recorder=recorder)
    return result


def _block_insert_opt(state, spec) -> ShardResult:
    """Insert, Opt strategy: delta rid vs (statics + later delta) within
    the opposite shard; symmetric evidence inferred for all partners."""
    result = ShardResult(counts={})
    shards = _shards_of(state, spec["n_shards"])
    delta_bits = bits_from(spec["delta_list"])
    static_bits = state["alive_bits"] & ~delta_bits
    record = state["tuple_index"] is not None
    diagonal = spec["block"][0] == spec["block"][1]
    tasks = []
    for side_rids, side_partners in _sides(spec["block"]):
        partner_shard = shards[side_partners]
        for rid in iter_bits(shards[side_rids] & delta_bits):
            later_delta = delta_bits & ~((1 << (rid + 1)) - 1)
            partners = (static_bits | later_delta) & partner_shard
            # The diagonal block guarantees the serial unconditional
            # index entry (a batch into an empty relation still records).
            if partners or diagonal:
                tasks.append(
                    ReconcileTask(rid, partners, partners if record else None)
                )
    recorder = ListRecorder(result.tuple_records) if record else None
    _run_tasks(state, result, tasks, recorder=recorder)
    return result


def _block_insert_base(state, spec) -> ShardResult:
    """Insert, Base strategy: delta rid vs everyone else in the opposite
    shard; inference only for static partners (delta pairs run both
    directions, once from each endpoint's block side)."""
    result = ShardResult(counts={})
    shards = _shards_of(state, spec["n_shards"])
    delta_bits = bits_from(spec["delta_list"])
    alive_bits = state["alive_bits"]
    static_bits = alive_bits & ~delta_bits
    record = state["tuple_index"] is not None
    diagonal = spec["block"][0] == spec["block"][1]
    tasks = []
    for side_rids, side_partners in _sides(spec["block"]):
        partner_shard = shards[side_partners]
        for rid in iter_bits(shards[side_rids] & delta_bits):
            partners = (alive_bits & ~(1 << rid)) & partner_shard
            later_delta = delta_bits & ~((1 << (rid + 1)) - 1)
            record_bits = (
                ((static_bits | later_delta) & partner_shard)
                if record
                else None
            )
            if partners or diagonal:
                tasks.append(ReconcileTask(rid, partners, record_bits))
    recorder = ListRecorder(result.tuple_records) if record else None
    _run_tasks(
        state, result, tasks, symmetric_bits=static_bits, recorder=recorder
    )
    return result


def _prefix_bits(delete_list: List[int], wanted: set) -> Dict[int, int]:
    """``position → bits of delete_list[:position]`` for the wanted
    positions, built in one pass over the sorted batch."""
    prefixes = {}
    accumulated = 0
    for position, rid in enumerate(delete_list):
        if position in wanted:
            prefixes[position] = accumulated
        accumulated |= 1 << rid
    if len(delete_list) in wanted:
        prefixes[len(delete_list)] = accumulated
    return prefixes


def _block_delete_recompute(state, spec) -> ShardResult:
    """Delete, recompute strategy: batch position ``p`` reconciles against
    the alive tuples minus the batch prefix, within the opposite shard."""
    result = ShardResult(counts={})
    shards = _shards_of(state, spec["n_shards"])
    alive_bits = state["alive_bits"]
    delete_list = spec["delete_list"]
    prefixes = _prefix_bits(
        delete_list, set(range(1, len(delete_list) + 1))
    )
    tasks = []
    for side_rids, side_partners in _sides(spec["block"]):
        rid_shard = shards[side_rids]
        partner_shard = shards[side_partners]
        for position, rid in enumerate(delete_list):
            if not (rid_shard >> rid) & 1:
                continue
            partners = (alive_bits & ~prefixes[position + 1]) & partner_shard
            if partners:
                tasks.append(ReconcileTask(rid, partners))
    _run_tasks(state, result, tasks)
    return result


def _block_delete_index(state, spec) -> ShardResult:
    """Delete, index strategy: the dying rid's owned pairs and stale
    corrections are per-rid atomic (the index stores one aggregate) and
    run in its diagonal block; the non-owned reconciliations split across
    the grid like every other pair."""
    result = ShardResult(counts={})
    shards = _shards_of(state, spec["n_shards"])
    relation = state["relation"]
    space = state["space"]
    tuple_index = state["tuple_index"]
    alive_bits = state["alive_bits"]
    symmetrize = space.symmetrize
    evidence_of_pair = space.evidence_of_pair
    delete_list = spec["delete_list"]
    diagonal = spec["block"][0] == spec["block"][1]
    prefixes = _prefix_bits(delete_list, set(range(len(delete_list))))
    counts = result.counts
    tasks = []
    for side_rids, side_partners in _sides(spec["block"]):
        rid_shard = shards[side_rids]
        partner_shard = shards[side_partners]
        for position, rid in enumerate(delete_list):
            if not (rid_shard >> rid) & 1:
                continue
            processed_bits = prefixes[position]
            rid_bit = 1 << rid
            partners = tuple_index.partners(rid)
            if diagonal:
                for evidence, count in tuple_index.owned_evidence(rid).items():
                    counts[evidence] = counts.get(evidence, 0) + count
                    symmetric = symmetrize(evidence)
                    counts[symmetric] = counts.get(symmetric, 0) + count
                stale = partners & (~alive_bits | processed_bits)
                if stale:
                    row = relation.row(rid)
                    for partner in iter_bits(stale):
                        evidence = evidence_of_pair(
                            row, relation.row(partner)
                        )
                        counts[evidence] = counts.get(evidence, 0) - 1
                        symmetric = symmetrize(evidence)
                        counts[symmetric] = counts.get(symmetric, 0) - 1
            others = (
                alive_bits
                & ~processed_bits
                & ~partners
                & ~rid_bit
                & partner_shard
            )
            if others:
                tasks.append(ReconcileTask(rid, others))
    if tasks:
        _run_tasks(state, result, tasks)
    return result
