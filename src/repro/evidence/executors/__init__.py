"""Shard executors: strategies for running pair-grid evidence blocks.

The registry maps executor names to implementations:

- ``serial`` — every block in the calling process (grid without pools);
- ``fork`` — in-process fork pool, snapshot shared copy-on-write;
- ``spawn`` — spawn-safe process pool, snapshot pickled to workers;
- ``socket`` — separate worker processes over crc32-framed loopback TCP;
- ``auto`` — ``fork`` when the platform has it, else ``spawn``.

See docs/distributed.md for the scheduling model and the determinism
contract shared by all of them.
"""

from __future__ import annotations

from typing import Optional

from repro.evidence.executors.base import (
    WORKER_FAULT_POINT,
    ExecutorStats,
    SerialExecutor,
    ShardExecutor,
    ShardResult,
    fork_available,
)
from repro.evidence.executors.grid import (
    grid_blocks,
    grid_shard_count,
    plan_blocks,
    shard_bitmaps,
)
from repro.evidence.executors.pool import ForkPoolExecutor, SpawnPoolExecutor
from repro.evidence.executors.tcp import SocketExecutor

EXECUTORS = {
    executor.name: executor
    for executor in (
        SerialExecutor,
        ForkPoolExecutor,
        SpawnPoolExecutor,
        SocketExecutor,
    )
}

#: CLI/API choices ("auto" resolves per platform).
EXECUTOR_CHOICES = ("auto",) + tuple(sorted(EXECUTORS))


def validate_executor(name: Optional[str]) -> str:
    """Normalize and validate an executor name (``None`` → ``auto``)."""
    name = name or "auto"
    if name not in EXECUTOR_CHOICES:
        raise ValueError(
            f"unknown executor {name!r}; choose from "
            f"{', '.join(EXECUTOR_CHOICES)}"
        )
    return name


def resolve_executor(name: Optional[str] = "auto") -> Optional[str]:
    """Resolve a requested executor to a concrete registry name.

    ``auto`` prefers ``fork`` (copy-on-write snapshot sharing, no pickling)
    and falls back to ``spawn`` where fork does not exist.  Explicitly
    requesting ``fork`` on a fork-less platform returns ``None`` — the
    caller degrades to serial and reports ``parallel.fallback``.
    """
    name = validate_executor(name)
    if name == "auto":
        return "fork" if fork_available() else "spawn"
    if name == "fork" and not fork_available():
        return None
    return name


def make_executor(name: Optional[str], workers: int) -> ShardExecutor:
    """Instantiate the executor ``name`` resolves to."""
    concrete = resolve_executor(name)
    if concrete is None:
        raise RuntimeError(
            "the 'fork' executor is unavailable on this platform"
        )
    return EXECUTORS[concrete](workers)


__all__ = [
    "EXECUTORS",
    "EXECUTOR_CHOICES",
    "WORKER_FAULT_POINT",
    "ExecutorStats",
    "ForkPoolExecutor",
    "SerialExecutor",
    "ShardExecutor",
    "ShardResult",
    "SocketExecutor",
    "SpawnPoolExecutor",
    "fork_available",
    "grid_blocks",
    "grid_shard_count",
    "make_executor",
    "plan_blocks",
    "resolve_executor",
    "shard_bitmaps",
    "validate_executor",
]
