"""crc32-framed message transport for the socket executor.

Same framing discipline as the WAL (:mod:`repro.durability.framing`): a
fixed header of magic, payload length, and crc32, followed by the pickled
payload.  A frame that fails any check — wrong magic, short read, crc
mismatch — raises :class:`WireError`, which the executor treats as "that
worker is gone" and the worker treats as "the parent is gone".
"""

from __future__ import annotations

import pickle
import struct
import zlib

#: Executor wire frames ("3DC eXecutor"); distinct from the WAL's
#: ``3DCW`` so a misdirected stream fails loudly on the first frame.
MAGIC = b"3DCX"

_HEADER = struct.Struct("<4sII")  # magic, payload length, crc32

#: Refuse absurd frame lengths before allocating (a corrupt length field
#: must not look like a 4 GiB read).
MAX_FRAME = 1 << 30


class WireError(ConnectionError):
    """The peer vanished or sent a corrupt frame."""


def send_message(sock, message) -> int:
    """Frame and send one message; returns the bytes put on the wire."""
    payload = pickle.dumps(message)
    frame = _HEADER.pack(MAGIC, len(payload), zlib.crc32(payload)) + payload
    try:
        sock.sendall(frame)
    except OSError as exc:
        raise WireError(f"send failed: {exc}") from exc
    return len(frame)


def _recv_exactly(sock, n_bytes: int) -> bytes:
    chunks = []
    remaining = n_bytes
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except OSError as exc:
            raise WireError(f"recv failed: {exc}") from exc
        if not chunk:
            raise WireError("peer closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock):
    """Receive one frame; returns ``(message, bytes_read)``."""
    header = _recv_exactly(sock, _HEADER.size)
    magic, length, crc = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME:
        raise WireError(f"frame length {length} exceeds limit")
    payload = _recv_exactly(sock, length)
    if zlib.crc32(payload) != crc:
        raise WireError("frame crc mismatch")
    return pickle.loads(payload), _HEADER.size + length
