"""Socket-based multi-process shard executor.

The stepping stone to multi-host evidence construction: workers are
separate Python processes (launched with ``python -m
repro.evidence.executors.tcp_worker``) that connect back to the parent
over loopback TCP and speak the crc32-framed protocol in
:mod:`repro.evidence.executors.wire`.  Nothing about the protocol assumes
a shared filesystem or address space — the engine snapshot is shipped as
one context frame per worker, exactly like the spawn pool's pickle.

Dispatch is parent-driven work stealing: the parent keeps one pending
deque and hands the next block to whichever worker reports ready, so a
fast worker drains the queue regardless of the home assignment.  A worker
whose connection drops mid-block has its claimed block re-queued (or run
in-process when no workers remain); block kernels are pure, so the
recovered state is byte-identical.
"""

from __future__ import annotations

import os
import selectors
import socket
import subprocess
import sys
from collections import deque
from pathlib import Path
from typing import List

from repro.evidence.executors.base import (
    ShardExecutor,
    ShardResult,
    run_local,
    shippable_context,
)
from repro.evidence.executors.wire import WireError, recv_message, send_message
from repro.observability import get_logger

logger = get_logger(__name__)

#: How long the parent waits for a launched worker to dial back before
#: giving up on it (generous: a cold spawn imports numpy).
ACCEPT_TIMEOUT_S = 30.0


def _worker_command(port: int, slot: int) -> List[str]:
    return [
        sys.executable,
        "-m",
        "repro.evidence.executors.tcp_worker",
        "--connect",
        f"127.0.0.1:{port}",
        "--slot",
        str(slot),
    ]


def _worker_env() -> dict:
    """Child environment with ``repro`` importable (workers start from a
    bare interpreter, not a fork)."""
    import repro

    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else os.pathsep.join([src_dir, existing])
    )
    return env


class SocketExecutor(ShardExecutor):
    """Drives remote worker processes over crc32-framed loopback TCP."""

    name = "socket"

    def run(self, context: dict, specs: List[dict]) -> List[ShardResult]:
        n_workers = max(1, min(self.workers, len(specs)))
        self._begin(len(specs), n_workers)
        self._specs = specs
        results: dict = {}
        pending = deque(range(len(specs)))
        listener = socket.create_server(("127.0.0.1", 0))
        listener.settimeout(ACCEPT_TIMEOUT_S)
        port = listener.getsockname()[1]
        shipped = shippable_context(context)
        procs = []
        connections = []
        claimed: dict = {}  # socket -> (slot, index)
        try:
            procs = [
                subprocess.Popen(_worker_command(port, slot), env=_worker_env())
                for slot in range(n_workers)
            ]
            for _ in range(n_workers):
                try:
                    conn, _addr = listener.accept()
                except (TimeoutError, OSError):  # pragma: no cover - defensive
                    logger.warning(
                        "socket executor: a worker never connected; "
                        "continuing with %d of %d", len(connections), n_workers
                    )
                    break
                self.stats.bytes_shipped += send_message(
                    conn, ("context", shipped)
                )
                connections.append(conn)
            selector = selectors.DefaultSelector()
            for conn in connections:
                selector.register(conn, selectors.EVENT_READ)
            while len(results) < len(specs) and selector.get_map():
                for key, _events in selector.select(timeout=0.5):
                    self._serve(
                        key.fileobj, selector, pending, results, claimed,
                        n_workers,
                    )
            selector.close()
        finally:
            for conn in connections:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - defensive
                    pass
            listener.close()
            for proc in procs:
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    proc.kill()

        missing = {
            index: specs[index]
            for index in range(len(specs))
            if index not in results
        }
        if missing:
            self.stats.redispatched += len(missing)
            logger.warning(
                "socket executor lost %d of %d blocks to dead workers; "
                "running them in-process", len(missing), len(specs),
            )
            for result in run_local(context, missing):
                results[result.index] = result
        return [results[index] for index in range(len(specs))]

    def _serve(
        self, conn, selector, pending, results, claimed, n_workers
    ) -> None:
        """Handle one readable worker socket: absorb its message, then
        either hand it the next pending block or send it home."""
        try:
            message, n_read = recv_message(conn)
        except WireError:
            lost = claimed.pop(conn, None)
            selector.unregister(conn)
            conn.close()
            if lost is not None:
                slot, index = lost
                logger.warning(
                    "socket worker %d died holding block %d; re-queueing",
                    slot, index,
                )
                self.stats.redispatched += 1
                pending.appendleft(index)
            return
        self.stats.bytes_shipped += n_read
        kind = message[0]
        slot = message[1]
        if kind == "done":
            _, _, index, result = message
            claimed.pop(conn, None)
            if index not in results:
                results[index] = result
                if index % n_workers != slot:
                    self.stats.steals += 1
        elif kind == "error":  # pragma: no cover - defensive
            _, _, index, text = message
            claimed.pop(conn, None)
            logger.warning(
                "socket worker %d failed on block %d (%s); re-queueing",
                slot, index, text,
            )
            self.stats.redispatched += 1
            if index not in results:
                pending.appendleft(index)
        # "ready" carries no result; fall through to assignment.
        while pending and pending[0] in results:
            pending.popleft()
        if pending:
            index = pending.popleft()
            self.stats.bytes_shipped += send_message(
                conn, ("task", index, self._specs[index])
            )
            claimed[conn] = (slot, index)
        else:
            try:
                send_message(conn, ("shutdown",))
            except WireError:  # pragma: no cover - defensive
                pass
            selector.unregister(conn)
            conn.close()
