"""Process-pool shard executors (fork and spawn start methods).

Both variants run the same work-stealing dispatch: every block spec goes
into one shared task queue and idle workers pull whatever is next, so a
worker that drew cheap intra-shard blocks steals the heavy cross-shard
blocks a slower sibling would otherwise serialize.  The difference is how
the engine snapshot reaches the workers:

- **fork**: the parent publishes the snapshot as a module global right
  before forking; children share it copy-on-write and nothing heavyweight
  is ever pickled (the historical PR-2 worker-pool behaviour);
- **spawn**: children start from a fresh interpreter, so the snapshot is
  pickled once (kernel excluded — each worker rebuilds it from the
  backend name) and shipped to every worker.  Slower to start, but works
  on platforms without ``fork`` and doubles as the rehearsal for the
  socket executor's remote workers.

Fault handling: a worker that dies mid-block (crash, OOM kill, the
``executor.shard`` fault point) simply never reports its result.  The
parent's gather loop notices — all results in, or no workers left — and
re-runs every unreported block in-process; block kernels are pure, so the
recovered state is byte-identical.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_module
from typing import List

from repro.durability.faults import SimulatedCrash, fault_point
from repro.evidence.executors import base
from repro.evidence.executors.base import (
    WORKER_FAULT_POINT,
    ShardExecutor,
    ShardResult,
    run_local,
    shippable_context,
)
from repro.evidence.executors.grid import run_block
from repro.observability import get_logger

logger = get_logger(__name__)

#: Parent-side poll interval while gathering results (seconds).  Short
#: enough that worker death is noticed promptly, long enough to stay off
#: the profiler.
_POLL_S = 0.25


def _pool_worker(slot: int, task_queue, result_queue, context_blob) -> None:
    """Worker loop: pull ``(index, spec)`` items until the sentinel.

    Forked children inherit the parent's active probe; per-pair accounting
    there would be lost at process exit, so it is switched off and the
    parent re-emits the aggregate from the gathered results.
    """
    from repro.observability.probe import deactivate

    deactivate()
    if context_blob is None:
        state = base._SHARD_STATE  # fork: shared copy-on-write
        if state is None:  # pragma: no cover - defensive
            raise RuntimeError("fork pool worker without a shared snapshot")
    else:
        state = base.load_shipped_context(context_blob)
    while True:
        item = task_queue.get()
        if item is None:
            break
        index, blob = item
        try:
            fault_point(WORKER_FAULT_POINT)
            result = run_block(state, pickle.loads(blob))
            result.index = index
            result.worker = slot
            result_queue.put(("done", slot, index, pickle.dumps(result)))
        except SimulatedCrash:
            # Model the worker dying mid-shard: no result, no goodbye.
            os._exit(17)
        except BaseException as exc:  # pragma: no cover - defensive
            result_queue.put(("error", slot, index, repr(exc)))


class _PoolExecutor(ShardExecutor):
    """Common work-stealing dispatch over a multiprocessing context."""

    start_method = ""

    def run(self, context: dict, specs: List[dict]) -> List[ShardResult]:
        n_workers = max(1, min(self.workers, len(specs)))
        self._begin(len(specs), n_workers)
        mp_context = multiprocessing.get_context(self.start_method)
        task_queue = mp_context.Queue()
        result_queue = mp_context.Queue()
        blobs = [pickle.dumps(spec) for spec in specs]
        for index, blob in enumerate(blobs):
            task_queue.put((index, blob))
            self.stats.bytes_shipped += len(blob)
        for _ in range(n_workers):
            task_queue.put(None)

        context_blob = None
        if self.start_method == "fork":
            base._SHARD_STATE = context
        else:
            context_blob = pickle.dumps(shippable_context(context))
            self.stats.bytes_shipped += n_workers * len(context_blob)
        procs = [
            mp_context.Process(
                target=_pool_worker,
                args=(slot, task_queue, result_queue, context_blob),
                daemon=True,
            )
            for slot in range(n_workers)
        ]
        results: dict = {}
        try:
            for proc in procs:
                proc.start()
            while len(results) < len(specs):
                try:
                    message = result_queue.get(timeout=_POLL_S)
                except queue_module.Empty:
                    if any(proc.is_alive() for proc in procs):
                        continue
                    break  # every worker gone; the audit below recovers
                self._handle(message, context, specs, results, n_workers)
            # Late messages beat a local re-run: drain what the feeder
            # threads managed to flush before any worker died.
            while len(results) < len(specs):
                try:
                    message = result_queue.get_nowait()
                except queue_module.Empty:
                    break
                self._handle(message, context, specs, results, n_workers)
        finally:
            for proc in procs:
                proc.join(timeout=5)
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()
            task_queue.cancel_join_thread()
            result_queue.cancel_join_thread()
            task_queue.close()
            result_queue.close()
            if self.start_method == "fork":
                base._SHARD_STATE = None

        missing = {
            index: specs[index]
            for index in range(len(specs))
            if index not in results
        }
        if missing:
            self.stats.redispatched += len(missing)
            logger.warning(
                "%s pool lost %d of %d blocks to dead workers; "
                "re-running them in-process",
                self.start_method, len(missing), len(specs),
            )
            for result in run_local(context, missing):
                results[result.index] = result
        return [results[index] for index in range(len(specs))]

    def _handle(self, message, context, specs, results, n_workers) -> None:
        kind = message[0]
        if kind == "done":
            _, slot, index, blob = message
            self.stats.bytes_shipped += len(blob)
            if index not in results:
                results[index] = pickle.loads(blob)
                if index % n_workers != slot:
                    self.stats.steals += 1
        elif kind == "error":  # pragma: no cover - defensive
            _, slot, index, text = message
            logger.warning(
                "pool worker %d failed on block %d (%s); re-running locally",
                slot, index, text,
            )
            if index not in results:
                self.stats.redispatched += 1
                results[index] = run_local(context, {index: specs[index]})[0]


class ForkPoolExecutor(_PoolExecutor):
    """The in-process fork pool: snapshot shared copy-on-write."""

    name = "fork"
    start_method = "fork"


class SpawnPoolExecutor(_PoolExecutor):
    """Spawn-safe pool for platforms without ``fork``: the snapshot is
    pickled to every worker."""

    name = "spawn"
    start_method = "spawn"
