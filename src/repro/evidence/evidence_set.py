"""The evidence set ``E_r`` with multiplicities.

An evidence is the set of predicates one *ordered* tuple pair satisfies,
stored as an ``int`` mask over the predicate space.  The evidence set maps
each distinct evidence to its *multiplicity* — the number of ordered tuple
pairs producing it (Section III-A7).  Multiplicities make delete
maintenance possible (an evidence only disappears when its count reaches
zero) and feed DC ranking and approximate-DC enumeration.

Invariant: for a relation with ``n`` alive rows, the total multiplicity is
``n · (n − 1)`` (every ordered pair of distinct tuples contributes one
evidence).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional


class EvidenceSet:
    """A multiset of evidence masks."""

    __slots__ = ("counts",)

    def __init__(self, counts: Optional[Dict[int, int]] = None):
        self.counts = dict(counts) if counts else {}

    # -- mutation ----------------------------------------------------------

    def add(self, mask: int, count: int = 1) -> None:
        """Increase the multiplicity of ``mask`` by ``count``."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self.counts[mask] = self.counts.get(mask, 0) + count

    def subtract(self, mask: int, count: int = 1) -> bool:
        """Decrease the multiplicity of ``mask``; return ``True`` when the
        evidence disappeared (multiplicity reached zero).

        :raises KeyError: if ``mask`` is not present.
        :raises ValueError: if the subtraction would go negative — that
            always indicates corrupted maintenance, never valid data.
        """
        current = self.counts.get(mask)
        if current is None:
            raise KeyError(f"evidence {mask:#x} not in evidence set")
        if count > current:
            raise ValueError(
                f"cannot subtract {count} from multiplicity {current} "
                f"of evidence {mask:#x}"
            )
        if count == current:
            del self.counts[mask]
            return True
        self.counts[mask] = current - count
        return False

    def merge(self, other: "EvidenceSet") -> list:
        """Add all of ``other``; return the masks that were new to ``self``
        (the insert-case ``E^inc`` of Algorithm 2)."""
        new_masks = []
        for mask, count in other.counts.items():
            if mask not in self.counts:
                new_masks.append(mask)
                self.counts[mask] = count
            else:
                self.counts[mask] += count
        return new_masks

    def subtract_all(self, other: "EvidenceSet") -> list:
        """Subtract all of ``other``; return the masks whose multiplicity
        reached zero (the delete-case ``E^inc``)."""
        removed = []
        for mask, count in other.counts.items():
            if self.subtract(mask, count):
                removed.append(mask)
        return removed

    # -- inspection ----------------------------------------------------------

    def __contains__(self, mask: int) -> bool:
        return mask in self.counts

    def __len__(self) -> int:
        """Number of distinct evidences."""
        return len(self.counts)

    def __iter__(self) -> Iterator[int]:
        """Iterate the distinct evidence masks."""
        return iter(self.counts)

    def count(self, mask: int) -> int:
        """Multiplicity of ``mask`` (0 when absent)."""
        return self.counts.get(mask, 0)

    def total_pairs(self) -> int:
        """Total multiplicity — must equal ``n·(n−1)`` for ``n`` alive rows."""
        return sum(self.counts.values())

    def copy(self) -> "EvidenceSet":
        return EvidenceSet(self.counts)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EvidenceSet):
            return self.counts == other.counts
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"EvidenceSet({len(self.counts)} distinct, "
            f"{self.total_pairs()} pairs)"
        )
