"""Static evidence-set building (the ECP analog, Section IV).

Processes alive tuples in ascending rid order; tuple ``t`` reconciles one
context pipeline against the partners *after* it and the symmetric
evidences ``e(t', t)`` are inferred (Section V-B3), so each unordered pair
is reconciled exactly once.  Optionally maintains the per-tuple evidence
index that accelerates later deletes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.evidence.evidence_set import EvidenceSet
from repro.evidence.indexes import ColumnIndexes
from repro.evidence.tuple_index import TupleEvidenceIndex
from repro.observability.probe import get_probe, probe_span
from repro.predicates.space import PredicateSpace
from repro.relational.relation import Relation


@dataclass
class EvidenceEngineState:
    """Everything the evidence engine carries between update batches."""

    space: PredicateSpace
    indexes: ColumnIndexes
    evidence: EvidenceSet
    tuple_index: Optional[TupleEvidenceIndex] = None
    stats: dict = field(default_factory=dict)


def collect_contexts(
    space: PredicateSpace,
    contexts: dict,
    evidence_set: EvidenceSet,
    symmetric_bits: Optional[int] = None,
) -> None:
    """Fold reconciled contexts into ``evidence_set``.

    Each context contributes its evidence once per partner; the symmetric
    evidence of the swapped pairs is inferred and added for the partners
    selected by ``symmetric_bits`` (default: all partners).
    """
    symmetrize = space.symmetrize
    total_inferred = 0
    for evidence, bits in contexts.items():
        count = bits.bit_count()
        if count:
            evidence_set.add(evidence, count)
        if symmetric_bits is None:
            sym_count = count
        else:
            sym_count = (bits & symmetric_bits).bit_count()
        if sym_count:
            evidence_set.add(symmetrize(evidence), sym_count)
            total_inferred += sym_count
    if total_inferred:
        probe = get_probe()
        if probe is not None:
            # Each inferred symmetric evidence is one ordered pair whose
            # reconciliation was skipped (the Figure 9 saving).
            probe.inc("evidence.pairs_inferred", total_inferred)


def build_evidence_state(
    relation: Relation,
    space: PredicateSpace,
    maintain_tuple_index: bool = False,
    checkpoint_step: int = 32,
    workers: int = 1,
    backend: Optional[str] = None,
    executor: Optional[str] = "auto",
    shards: Optional[int] = None,
) -> EvidenceEngineState:
    """Build the full evidence set of ``relation`` from scratch.

    :param maintain_tuple_index: also populate the per-tuple evidence index
        used by the fast delete strategy (Section V-C); the paper reports
        only a slight build-time overhead for it.
    :param workers: shard the scan over a worker pool when > 1 (0 = one
        worker per CPU); the merged evidence set is identical to the
        serial result for any worker count.
    :param backend: evidence-kernel backend (``"auto"``/``"python"``/
        ``"numpy"``, ``None`` = auto); results are identical for any
        backend.
    :param executor: shard-executor backend (``"auto"``/``"serial"``/
        ``"fork"``/``"spawn"``/``"socket"``); results are identical for
        any executor.
    :param shards: pair-grid shard count override (``None`` = derived
        from ``workers``); results are identical for any shard count.
    """
    from repro.evidence import parallel
    from repro.evidence.kernels import make_kernel
    from repro.evidence.kernels.base import ReconcileTask, TupleIndexRecorder

    with probe_span("indexes"):
        indexes = ColumnIndexes(relation, step=checkpoint_step)
    evidence_set = EvidenceSet()
    tuple_index = TupleEvidenceIndex() if maintain_tuple_index else None

    n_workers = parallel.resolve_workers(workers)
    with probe_span("scan"):
        if parallel.should_parallelize(n_workers, len(relation), executor):
            evidence_set = parallel.parallel_static_evidence(
                relation, space, indexes, tuple_index, n_workers, backend,
                executor=executor, shards=shards,
            )
        else:
            # Tuple t reconciles against the partners after it; the last
            # alive rid has none left and gets no task (and no index
            # entry), exactly like the historical serial scan.
            tasks = []
            remaining = relation.alive_bits
            for rid in relation.rids():
                remaining &= ~(1 << rid)
                if not remaining:
                    break
                tasks.append(
                    ReconcileTask(
                        rid,
                        remaining,
                        remaining if maintain_tuple_index else None,
                    )
                )
            kernel = make_kernel(backend, relation, space, indexes)
            recorder = (
                TupleIndexRecorder(tuple_index)
                if maintain_tuple_index
                else None
            )
            kernel.reconcile(tasks, evidence_set, recorder)

    return EvidenceEngineState(
        space=space,
        indexes=indexes,
        evidence=evidence_set,
        tuple_index=tuple_index,
    )
