"""Naive pair-scan evidence building — the FastDC-style oracle.

Evaluates every ordered tuple pair directly against the predicate space.
Quadratic and slow, but independent of the bitmap/index machinery, which
makes it the correctness oracle for the context pipeline in tests and the
"FastDC" evidence phase of the baseline comparisons.
"""

from __future__ import annotations

from typing import Iterable

from repro.evidence.evidence_set import EvidenceSet
from repro.predicates.space import PredicateSpace
from repro.relational.relation import Relation


def naive_evidence_set(relation: Relation, space: PredicateSpace) -> EvidenceSet:
    """Full evidence set of all ordered pairs of alive tuples."""
    evidence_set = EvidenceSet()
    rows = [(rid, relation.row(rid)) for rid in relation.rids()]
    evidence_of_pair = space.evidence_of_pair
    for rid_t, row_t in rows:
        for rid_u, row_u in rows:
            if rid_t != rid_u:
                evidence_set.add(evidence_of_pair(row_t, row_u))
    return evidence_set


def naive_incremental_evidence(
    relation: Relation, space: PredicateSpace, delta_rids: Iterable[int]
) -> EvidenceSet:
    """Evidence of all ordered pairs with at least one tuple in ``delta``.

    Works for both inserts (rows already inserted and alive) and deletes
    (rows still alive, about to be removed).
    """
    delta = set(delta_rids)
    evidence_set = EvidenceSet()
    rows = [(rid, relation.row(rid)) for rid in relation.rids()]
    evidence_of_pair = space.evidence_of_pair
    for rid_t, row_t in rows:
        for rid_u, row_u in rows:
            if rid_t == rid_u:
                continue
            if rid_t in delta or rid_u in delta:
                evidence_set.add(evidence_of_pair(row_t, row_u))
    return evidence_set
