"""Column indexes driving evidence reconciliation (Section V-B1).

Two index families, both mapping to raw-``int`` rid bit patterns:

- :class:`EqualityIndex` — hash map ``value → rids with that value``,
  the position-list-index analog of [9]; probed by categorical groups and
  by the equality class of numeric groups.
- :class:`RangeIndex` — sorted distinct values plus *checkpointed* suffix
  bitmaps: checkpoint ``i`` holds the union of rid sets of all values at
  sorted positions ``≥ i · step``.  A greater-than probe unions at most
  ``step`` equality entries and one checkpoint, the pure-Python analog of
  the paper's two-layered (binned) bitmap index.  Checkpoints are rebuilt
  lazily after mutations.

Both support incremental ``add``/``remove`` so the discoverer can maintain
them across update batches instead of rebuilding from scratch (Algorithm 1
line 1 indexes the *updated* table).
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Iterable, Optional

from repro.observability.probe import get_probe
from repro.relational.relation import Relation

DEFAULT_CHECKPOINT_STEP = 32


class EqualityIndex:
    """Hash index: column value → bit pattern of rids holding it."""

    __slots__ = ("entries",)

    def __init__(self):
        self.entries = {}

    def add(self, rid: int, value) -> None:
        self.entries[value] = self.entries.get(value, 0) | (1 << rid)

    def remove(self, rid: int, value) -> None:
        bits = self.entries.get(value, 0) & ~(1 << rid)
        if bits:
            self.entries[value] = bits
        else:
            self.entries.pop(value, None)

    def probe(self, value) -> int:
        """Rids whose column value equals ``value`` (0 when none)."""
        return self.entries.get(value, 0)

    def snapshot_clone(self) -> "EqualityIndex":
        """Independent copy for publication to concurrent readers."""
        clone = EqualityIndex()
        clone.entries = dict(self.entries)
        return clone

    def __len__(self) -> int:
        return len(self.entries)


class RangeIndex:
    """Sorted index answering equal / strictly-greater probes on a numeric
    column with checkpointed suffix bitmaps.

    NaN is given a total-order position: equal to other NaNs and strictly
    greater than every number.  NaN rids live in a dedicated side bitmap
    (``insort``/``bisect`` on a list containing NaN silently corrupts the
    sort order, and keeping NaN out of ``values`` keeps the hot probe path
    free of key-function overhead); the same convention is implemented by
    :meth:`repro.predicates.space.PredicateSpace.evidence_of_pair` and both
    evidence kernels, so all evaluation paths agree.
    """

    __slots__ = ("entries", "values", "step", "nan_bits", "_checkpoints", "_dirty")

    def __init__(self, step: int = DEFAULT_CHECKPOINT_STEP):
        if step < 1:
            raise ValueError("checkpoint step must be >= 1")
        self.entries = {}
        self.values = []  # sorted distinct values, NaN excluded
        self.step = step
        self.nan_bits = 0
        self._checkpoints = []
        self._dirty = True

    def add(self, rid: int, value) -> None:
        if value != value:
            self.nan_bits |= 1 << rid
            return
        bits = self.entries.get(value)
        if bits is None:
            insort(self.values, value)
            self.entries[value] = 1 << rid
        else:
            self.entries[value] = bits | (1 << rid)
        self._dirty = True

    def remove(self, rid: int, value) -> None:
        if value != value:
            self.nan_bits &= ~(1 << rid)
            return
        bits = self.entries.get(value, 0) & ~(1 << rid)
        if bits:
            self.entries[value] = bits
        else:
            self.entries.pop(value, None)
            position = bisect_right(self.values, value) - 1
            if position >= 0 and self.values[position] == value:
                del self.values[position]
        self._dirty = True

    def _rebuild_checkpoints(self) -> None:
        probe = get_probe()
        if probe is not None:
            probe.inc("index.checkpoint_rebuilds")
        # checkpoint[i] = union of entries for values at positions >= i*step
        n_checkpoints = len(self.values) // self.step + 1
        checkpoints = [0] * (n_checkpoints + 1)
        suffix = 0
        for position in range(len(self.values) - 1, -1, -1):
            suffix |= self.entries[self.values[position]]
            if position % self.step == 0:
                checkpoints[position // self.step] = suffix
        self._checkpoints = checkpoints
        self._dirty = False

    def eq_gt(self, value) -> tuple:
        """Return ``(eq_bits, gt_bits)``: rids with column value equal to,
        respectively strictly greater than, ``value`` (NaN equals NaN and
        is greater than every number)."""
        if value != value:
            return self.nan_bits, 0
        if self._dirty:
            self._rebuild_checkpoints()
        eq_bits = self.entries.get(value, 0)
        position = bisect_right(self.values, value)
        block_end = -(-position // self.step) * self.step  # next checkpoint
        gt_bits = self.nan_bits
        for index in range(position, min(block_end, len(self.values))):
            gt_bits |= self.entries[self.values[index]]
        checkpoint = block_end // self.step
        if checkpoint < len(self._checkpoints):
            gt_bits |= self._checkpoints[checkpoint]
        return eq_bits, gt_bits

    def snapshot_clone(self) -> "RangeIndex":
        """Independent copy for publication to concurrent readers.

        Checkpoints are rebuilt eagerly (in the cloning thread) so the
        clone never mutates itself on a probe: after construction every
        ``eq_gt`` call is a pure read, safe to share across threads.
        """
        clone = RangeIndex(self.step)
        clone.entries = dict(self.entries)
        clone.values = list(self.values)
        clone.nan_bits = self.nan_bits
        if self._dirty:
            clone._rebuild_checkpoints()
        else:
            clone._checkpoints = list(self._checkpoints)
            clone._dirty = False
        return clone

    def __len__(self) -> int:
        return len(self.values) + (1 if self.nan_bits else 0)


class ColumnIndexes:
    """Per-column equality and range indexes over the alive rows of a
    relation, maintained across update batches."""

    def __init__(self, relation: Relation, step: int = DEFAULT_CHECKPOINT_STEP):
        self.relation = relation
        self.step = step
        self.equality = []
        self.ranges: list = []
        for column in relation.schema:
            self.equality.append(EqualityIndex())
            self.ranges.append(RangeIndex(step) if column.is_numeric else None)
        self.indexed_bits = 0
        self.add_rows(relation.rids())

    def add_rows(self, rids: Iterable[int]) -> None:
        """Index the given rows (values read from the relation)."""
        for rid in rids:
            bit = 1 << rid
            if self.indexed_bits & bit:
                raise ValueError(f"rid {rid} is already indexed")
            self.indexed_bits |= bit
            for position in range(len(self.relation.schema)):
                value = self.relation.value(rid, position)
                self.equality[position].add(rid, value)
                range_index = self.ranges[position]
                if range_index is not None:
                    range_index.add(rid, value)

    def remove_rows(self, rids: Iterable[int]) -> None:
        """Drop the given rows from all indexes."""
        for rid in rids:
            bit = 1 << rid
            if not self.indexed_bits & bit:
                raise ValueError(f"rid {rid} is not indexed")
            self.indexed_bits &= ~bit
            for position in range(len(self.relation.schema)):
                value = self.relation.value(rid, position)
                self.equality[position].remove(rid, value)
                range_index = self.ranges[position]
                if range_index is not None:
                    range_index.remove(rid, value)

    def snapshot_clone(self, relation: Optional[Relation] = None) -> "ColumnIndexes":
        """Independent, probe-only copy for publication to readers.

        The clone shares no mutable structure with this instance, so a
        writer may keep maintaining the live indexes while readers probe
        the clone (the service layer's snapshot store relies on this).
        ``relation`` replaces the back-reference (pass the frozen copy
        published alongside the indexes); it is only consulted by
        ``add_rows``/``remove_rows``, which snapshots never call.
        """
        clone = ColumnIndexes.__new__(ColumnIndexes)
        clone.relation = relation if relation is not None else self.relation
        clone.step = self.step
        clone.equality = [index.snapshot_clone() for index in self.equality]
        clone.ranges = [
            index.snapshot_clone() if index is not None else None
            for index in self.ranges
        ]
        clone.indexed_bits = self.indexed_bits
        return clone

    def probe_group(self, group, value) -> tuple:
        """Probe the indexes of ``group``'s rhs column with the lhs value.

        Returns ``(eq_bits, gt_bits)`` over indexed rids; ``gt_bits`` is 0
        for categorical groups (no order classes).
        """
        if group.numeric:
            return self.ranges[group.rhs_position].eq_gt(value)
        return self.equality[group.rhs_position].probe(value), 0
