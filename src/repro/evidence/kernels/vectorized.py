"""NumPy-vectorized evidence kernel.

Instead of reconciling one context pipeline per lhs tuple, this backend
materializes the relation's columns as arrays once per maintenance
operation and processes reconciliation tasks in pair blocks:

1. The block's partner bitmaps are unpacked into one boolean task×rid
   matrix; ``np.nonzero`` yields the ordered-pair index arrays, already
   grouped by task.
2. For every predicate group the lhs/partner column values are gathered
   and compared in one vectorized pass, yielding a per-pair *outcome code*
   (0 = equal, 1 = partner greater, 2 = partner smaller — the three clue
   classes of a group).  Codes are packed two bits per group into uint64
   *clue words*; because every group's outcome→bits mapping is injective
   and groups occupy disjoint bit ranges, equal clue words ⇔ equal
   evidence masks.
3. One sort over ``(task, clue words)`` folds the block into its
   evidence-context partitions: segment boundaries give the distinct
   evidences per lhs tuple, segment sums give pair multiplicities plus
   the symmetric-inference and ownership sub-counts.
4. Only the few *distinct* clue words are decoded back into bigint
   evidence masks in Python; evidence totals are aggregated per code with
   ``bincount`` and ownership counters are built from per-task slices, so
   no Python loop runs per pair or per context.

String columns are dictionary-encoded into int64 codes against one shared
vocabulary (categorical groups may span two columns), so group comparisons
never touch NumPy's slow unicode paths.  NaN follows the engine-wide total
order (NaN = NaN, NaN greater than every number; see
:class:`repro.evidence.indexes.RangeIndex`).  Numeric columns are gated on
exact float64 representability — any integer beyond ±2^53 raises
:class:`~repro.evidence.kernels.base.KernelUnsupported` at construction
and the registry falls back to the pure-Python backend, so results never
silently lose precision.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.evidence.kernels.base import (
    EvidenceKernel,
    KernelStats,
    KernelUnsupported,
    ReconcileTask,
)
from repro.relational.schema import ColumnType

try:  # NumPy is an optional dependency; absence selects the Python backend.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

#: Integers beyond ±2^53 are not exactly representable in float64.
_EXACT_INT_BOUND = 1 << 53
#: Predicate groups per packed byte (2 bits each).  Outcome codes are
#: computed and packed on uint8 *byte planes* — one eighth the memory
#: traffic of packing straight into uint64 — and widened to clue words
#: only once per block.
_GROUPS_PER_BYTE = 4
#: Bytes (and therefore groups) per clue word.
_BYTES_PER_WORD = 8
_GROUPS_PER_WORD = _GROUPS_PER_BYTE * _BYTES_PER_WORD
#: Target ordered pairs per block — bounds the per-pair working arrays
#: (a block holds a handful of int64/uint64 arrays of this length).
_BLOCK_PAIRS = 1 << 20


def numpy_available() -> bool:
    """Whether the vectorized backend can run at all in this process."""
    return _np is not None


class VectorizedKernel(EvidenceKernel):
    """Columnar, batched evidence reconciliation on NumPy arrays."""

    name = "numpy"

    def __init__(self, relation, space, indexes):
        if _np is None:
            raise KernelUnsupported("NumPy is not installed")
        super().__init__(relation, space, indexes)
        self._n_slots = relation.next_rid
        self._nbytes = (self._n_slots + 7) // 8 or 1
        self._columns = {}
        self._has_nan = {}
        self._padded = {}
        # Column arrays are cached on the relation and extended in place
        # of rebuilt: rids are append-only and dead slots retain their
        # values, so a cached prefix never goes stale — a maintenance
        # delta only costs encoding its own suffix.
        column_cache = getattr(relation, "_kernel_column_cache", None)
        if column_cache is None:
            column_cache = {"vocabulary": {}, "columns": {}}
            relation._kernel_column_cache = column_cache
        self._string_codes: dict = column_cache["vocabulary"]
        needed = {group.lhs_position for group in space.groups}
        needed.update(group.rhs_position for group in space.groups)
        for position in sorted(needed):
            array, has_nan = self._load_column(position, column_cache)
            self._columns[position] = array
            self._has_nan[position] = has_nan
        n_groups = len(space.groups)
        self._n_code_bytes = max(1, -(-n_groups // _GROUPS_PER_BYTE))
        self._n_words = max(1, -(-self._n_code_bytes // _BYTES_PER_WORD))
        # group index → (byte plane, bit shift of its 2-bit field)
        self._byte_slots = [
            (index // _GROUPS_PER_BYTE, 2 * (index % _GROUPS_PER_BYTE))
            for index in range(n_groups)
        ]
        # The code→mask decoding is a pure function of the space's group
        # layout, so the cache lives on the space and survives across the
        # per-operation kernel instances.  Decoding goes byte-by-byte:
        # each byte table maps one packed byte (≤ 4 groups) to its bigint
        # mask contribution, so a fresh code costs a handful of dict hits
        # instead of a loop over every group.
        decode_cache = getattr(space, "_kernel_decode_cache", None)
        if decode_cache is None:
            decode_cache = {
                "codes": {},
                "bytes": [{} for _ in range(self._n_code_bytes)],
            }
            space._kernel_decode_cache = decode_cache
        self._mask_cache: dict = decode_cache["codes"]
        self._byte_tables: list = decode_cache["bytes"]

    # -- column materialization ------------------------------------------------

    def _load_column(self, position: int, cache: dict):
        np = _np
        values = self.relation.column_values(position)
        n_values = len(values)
        entry = cache["columns"].get(position)
        if entry is not None and entry[2] == n_values:
            return entry[0], entry[1]
        # Encode only the suffix beyond what the cache already covers.
        start = entry[2] if entry is not None else 0
        suffix = values[start:]
        column = self.relation.schema[position]
        if not column.is_numeric:
            # Dictionary-encode against the relation-wide vocabulary: code
            # equality ⇔ string equality, across columns too.
            vocabulary = cache["vocabulary"]
            # Register unseen values (first-occurrence order), then encode
            # the whole suffix with one C-level dict-lookup map.
            for value in dict.fromkeys(suffix):
                if value not in vocabulary:
                    vocabulary[value] = len(vocabulary)
            codes = np.fromiter(
                map(vocabulary.__getitem__, suffix),
                dtype=np.int64,
                count=len(suffix),
            )
            array = codes if entry is None else np.concatenate((entry[0], codes))
            cache["columns"][position] = (array, False, n_values)
            return array, False
        if column.ctype is ColumnType.INTEGER:
            unsafe = any(
                value > _EXACT_INT_BOUND or value < -_EXACT_INT_BOUND
                for value in suffix
            )
        else:
            unsafe = any(
                type(value) is int
                and (value > _EXACT_INT_BOUND or value < -_EXACT_INT_BOUND)
                for value in suffix
            )
        if unsafe:
            raise KernelUnsupported(
                f"column {column.name!r} holds integers beyond ±2^53, "
                f"which float64 cannot represent exactly"
            )
        try:
            tail = np.asarray(suffix, dtype=np.float64)
        except (OverflowError, ValueError) as exc:
            raise KernelUnsupported(
                f"column {column.name!r} is not representable as float64: {exc}"
            ) from exc
        has_nan = bool(np.isnan(tail).any()) or (
            entry[1] if entry is not None else False
        )
        array = tail if entry is None else np.concatenate((entry[0], tail))
        cache["columns"][position] = (array, has_nan, n_values)
        return array, has_nan

    # -- bitmap helpers ----------------------------------------------------------

    def _membership(self, bits: int):
        """Boolean rid-indexed membership array for ``bits``."""
        np = _np
        return np.unpackbits(
            np.frombuffer(
                bits.to_bytes(self._nbytes, "little"), dtype=np.uint8
            ),
            bitorder="little",
        ).astype(bool, copy=False)

    def _bitmap_matrix(self, bit_patterns):
        """Unpack per-task bit patterns into one boolean task×rid matrix."""
        np = _np
        nbytes = self._nbytes
        buffer = b"".join(
            bits.to_bytes(nbytes, "little") for bits in bit_patterns
        )
        return np.unpackbits(
            np.frombuffer(buffer, dtype=np.uint8).reshape(-1, nbytes),
            axis=1,
            bitorder="little",
        )

    # -- clue-word computation -------------------------------------------------

    def _padded_column(self, position: int):
        """The column array zero-padded to the bitmap matrix width."""
        np = _np
        column = self._padded.get(position)
        if column is None:
            base = self._columns[position]
            pad = self._nbytes * 8 - len(base)
            column = (
                base
                if pad <= 0
                else np.concatenate((base, np.zeros(pad, dtype=base.dtype)))
            )
            self._padded[position] = column
        return column

    def _outcome_words(self, lhs_rids, lhs_ord, partner_idx, matrix):
        """Per-pair packed outcome codes: one uint64 array per clue word.

        Outcomes are computed and packed on uint8 byte planes (4 groups
        per byte), then widened to uint64 clue words once — per-group work
        stays on byte-wide arrays.  Dense blocks (most pairs of the
        task×rid matrix present — the typical insert/build shape) compare
        entire rows against entire columns by broadcasting, with no
        per-pair index gathers at all, and compress the byte planes by
        the flat partner mask once at the end.  Sparse blocks gather the
        per-pair values instead.
        """
        np = _np
        n_pairs = len(lhs_ord)
        n_tasks, width = matrix.shape
        if 4 * n_pairs >= n_tasks * width:
            planes = self._dense_planes(lhs_rids, matrix)
        else:
            planes = self._sparse_planes(lhs_rids[lhs_ord], partner_idx)
        # Widen the byte planes into clue words; explicit shifts keep the
        # layout identical on any byte order.
        words = []
        for start in range(0, self._n_code_bytes, _BYTES_PER_WORD):
            chunk = planes[start : start + _BYTES_PER_WORD]
            word = chunk[-1].astype(np.uint64)
            for plane in reversed(chunk[:-1]):
                word <<= np.uint64(8)
                word |= plane
            words.append(word)
        return words

    def _group_codes(self, group, a, b, nan_mask_of):
        """Outcome codes of one predicate group (uint8, any shape)."""
        np = _np
        if group.numeric:
            # 0 = equal, 1 = partner greater, 2 = partner smaller, as
            # 2 - (a<b) - 2*(a==b) on byte views (cheaper than masked
            # assignment); any NaN comparison lands on 2 by IEEE
            # semantics and is then patched to the total order
            # (NaN = NaN, NaN greatest).
            lt = a < b
            eq = a == b
            codes = np.full(lt.shape, 2, dtype=np.uint8)
            np.subtract(codes, lt.view(np.uint8), out=codes)
            np.subtract(
                codes, np.left_shift(eq.view(np.uint8), 1), out=codes
            )
            if (
                self._has_nan[group.lhs_position]
                or self._has_nan[group.rhs_position]
            ):
                a_nan = nan_mask_of(a)
                b_nan = nan_mask_of(b)
                codes[b_nan & ~a_nan] = 1
                codes[a_nan & b_nan] = 0
            return codes
        return None  # categorical groups are packed inline by the caller

    def _sparse_planes(self, lhs_idx, partner_idx):
        np = _np
        n_pairs = len(lhs_idx)
        planes = [
            np.zeros(n_pairs, dtype=np.uint8)
            for _ in range(self._n_code_bytes)
        ]
        lhs_cache: dict = {}
        rhs_cache: dict = {}
        for index, group in enumerate(self.space.groups):
            a = lhs_cache.get(group.lhs_position)
            if a is None:
                a = self._columns[group.lhs_position][lhs_idx]
                lhs_cache[group.lhs_position] = a
            b = rhs_cache.get(group.rhs_position)
            if b is None:
                b = self._columns[group.rhs_position][partner_idx]
                rhs_cache[group.rhs_position] = b
            byte_index, shift = self._byte_slots[index]
            plane = planes[byte_index]
            codes = self._group_codes(group, a, b, np.isnan)
            if codes is None:
                # Categorical outcome is 0 or 2 — shift the inequality
                # flag straight into the field's high bit.
                plane |= (a != b).view(np.uint8) << np.uint8(shift + 1)
            elif shift:
                plane |= codes << np.uint8(shift)
            else:
                plane |= codes
        return planes

    def _dense_planes(self, lhs_rids, matrix):
        np = _np
        n_tasks, width = matrix.shape
        flat = matrix.ravel().view(bool)
        planes = [
            np.zeros((n_tasks, width), dtype=np.uint8)
            for _ in range(self._n_code_bytes)
        ]
        lhs_cache: dict = {}
        nan_cache: dict = {}

        def column_nan(values):
            # Broadcast NaN masks: the lhs side is a per-task column
            # vector, the partner side one full padded column (cached).
            if values.ndim == 2:
                return np.isnan(values)
            key = id(values)
            mask = nan_cache.get(key)
            if mask is None:
                mask = np.isnan(values)
                nan_cache[key] = mask
            return mask

        for index, group in enumerate(self.space.groups):
            a = lhs_cache.get(group.lhs_position)
            if a is None:
                a = self._columns[group.lhs_position][lhs_rids][:, None]
                lhs_cache[group.lhs_position] = a
            b = self._padded_column(group.rhs_position)
            byte_index, shift = self._byte_slots[index]
            plane = planes[byte_index]
            codes = self._group_codes(group, a, b, column_nan)
            if codes is None:
                plane |= (a != b).view(np.uint8) << np.uint8(shift + 1)
            elif shift:
                plane |= codes << np.uint8(shift)
            else:
                plane |= codes
        return [plane.ravel()[flat] for plane in planes]

    def _mask_of_code(self, code) -> int:
        """Decode one packed clue code back into a bigint evidence mask."""
        mask = self._mask_cache.get(code)
        if mask is None:
            words = code if isinstance(code, tuple) else (code,)
            groups = self.space.groups
            n_groups = len(groups)
            mask = 0
            for byte_index in range(self._n_code_bytes):
                word, offset = divmod(byte_index, _BYTES_PER_WORD)
                value = (int(words[word]) >> (8 * offset)) & 0xFF
                table = self._byte_tables[byte_index]
                part = table.get(value)
                if part is None:
                    part = 0
                    base = byte_index * _GROUPS_PER_BYTE
                    for slot in range(min(_GROUPS_PER_BYTE, n_groups - base)):
                        group = groups[base + slot]
                        outcome = (value >> (2 * slot)) & 3
                        part |= (
                            group.eq_bits,
                            group.gt_bits,
                            group.lt_bits,
                        )[outcome]
                    table[value] = part
                mask |= part
            self._mask_cache[code] = mask
        return mask

    # -- reconciliation ----------------------------------------------------------

    def reconcile(
        self,
        tasks: Sequence[ReconcileTask],
        sink,
        recorder=None,
        symmetric_bits: Optional[int] = None,
    ) -> KernelStats:
        stats = KernelStats()
        direct_totals: dict = {}
        sym_totals: dict = {}
        sym_member = (
            self._membership(symmetric_bits)
            if symmetric_bits is not None
            else None
        )

        block: list = []
        block_pairs = 0

        def flush() -> None:
            nonlocal block, block_pairs
            if block:
                stats.pipelines += len(block)
                stats.pairs += block_pairs
                self._run_block(
                    block, sym_member, recorder, direct_totals, sym_totals, stats
                )
                block = []
                block_pairs = 0

        for task in tasks:
            if not task.partner_bits:
                # No pairs, no counters — but the serial insert paths still
                # record an empty ownership entry for partnerless tuples.
                if recorder is not None and task.record_bits is not None:
                    recorder.record(task.rid, {}, 0)
                continue
            n_pairs = task.partner_bits.bit_count()
            if block and block_pairs + n_pairs > _BLOCK_PAIRS:
                flush()
            block.append(task)
            block_pairs += n_pairs
        flush()

        # Deterministic sink order regardless of block partitioning.
        symmetrize = self.space.symmetrize
        for mask in sorted(direct_totals):
            sink.add(mask, direct_totals[mask])
        inferred = 0
        for mask in sorted(sym_totals):
            count = sym_totals[mask]
            sink.add(symmetrize(mask), count)
            inferred += count
        stats.pairs_inferred = inferred
        self._emit_probe(stats)
        return stats

    def _run_block(
        self, block, sym_member, recorder, direct_totals, sym_totals, stats
    ) -> None:
        np = _np
        n_tasks = len(block)
        matrix = self._bitmap_matrix(task.partner_bits for task in block)
        lhs_ord, partner_idx = np.nonzero(matrix)
        lhs_rids = np.fromiter(
            (task.rid for task in block), dtype=np.int64, count=n_tasks
        )
        words = self._outcome_words(lhs_rids, lhs_ord, partner_idx, matrix)

        # Fold the pairs by (task, clue words).  lhs_ord is already sorted
        # (np.nonzero is row-major), so when the whole key fits one uint64
        # a single stable argsort replaces the general lexsort.
        code_bits = 8 * self._n_code_bytes
        ord_bits = max(1, (n_tasks - 1).bit_length())
        if self._n_words == 1 and code_bits + ord_bits <= 64:
            if code_bits + ord_bits <= 32:
                # A narrower key halves the radix-sort passes.
                combined = (
                    lhs_ord.astype(np.uint32) << np.uint32(code_bits)
                ) | words[0].astype(np.uint32)
            else:
                combined = (
                    lhs_ord.astype(np.uint64) << np.uint64(code_bits)
                ) | words[0]
            # Segment aggregates are order-invariant within equal keys,
            # so the faster unstable introsort is safe here.
            order = np.argsort(combined)
            sorted_keys = [combined[order]]
        else:
            order = np.lexsort(tuple(reversed(words)) + (lhs_ord,))
            sorted_keys = [lhs_ord[order]]
            sorted_keys.extend(word[order] for word in words)
        n_total = len(order)
        boundary = np.empty(n_total, dtype=bool)
        boundary[0] = True
        first = sorted_keys[0]
        boundary[1:] = first[1:] != first[:-1]
        for key in sorted_keys[1:]:
            boundary[1:] |= key[1:] != key[:-1]
        starts = np.nonzero(boundary)[0]
        counts = np.diff(np.append(starts, n_total))
        order_starts = order[starts]
        unique_ord = lhs_ord[order_starts]
        unique_words = [word[order_starts] for word in words]
        stats.contexts_out += len(starts)

        # Second-level fold: map the distinct clue codes (few) to bigint
        # masks once, then aggregate evidence totals per code.
        if self._n_words == 1:
            # Hand-rolled unique-with-inverse: np.unique would sort the
            # codes with the same argsort but also permute back through
            # fancy indexing twice; doing it by hand keeps one pass.
            ctx_words = unique_words[0]
            code_order = np.argsort(ctx_words)
            ctx_sorted = ctx_words[code_order]
            new_code = np.empty(len(ctx_sorted), dtype=bool)
            new_code[:1] = True
            new_code[1:] = ctx_sorted[1:] != ctx_sorted[:-1]
            code_ids = np.cumsum(new_code) - 1
            code_inverse = np.empty(len(ctx_words), dtype=np.int64)
            code_inverse[code_order] = code_ids
            distinct_codes = ctx_sorted[new_code].tolist()
        else:
            code_keys, code_inverse = np.unique(
                np.stack(unique_words, axis=1), axis=0, return_inverse=True
            )
            distinct_codes = [tuple(row) for row in code_keys.tolist()]
            code_inverse = code_inverse.reshape(-1)
        mask_objs = [self._mask_of_code(code) for code in distinct_codes]
        direct_per_code = np.bincount(
            code_inverse, weights=counts, minlength=len(mask_objs)
        )
        for mask, total in zip(mask_objs, direct_per_code.tolist()):
            count = int(total)
            if count:
                direct_totals[mask] = direct_totals.get(mask, 0) + count

        if sym_member is None:
            sym_per_code = direct_per_code
        else:
            sym_unique = np.add.reduceat(
                sym_member[partner_idx][order].astype(np.int64), starts
            )
            sym_per_code = np.bincount(
                code_inverse, weights=sym_unique, minlength=len(mask_objs)
            )
        for mask, total in zip(mask_objs, sym_per_code.tolist()):
            count = int(total)
            if count:
                sym_totals[mask] = sym_totals.get(mask, 0) + count

        if recorder is not None and any(
            task.record_bits is not None for task in block
        ):
            # The serial build and insert paths record every partner pair
            # (record_bits covers partner_bits): ownership counts are then
            # exactly the context pair counts already folded above, with no
            # zero entries — skip the ownership bitmap pass entirely.
            full_record = all(
                task.record_bits is None
                or not (task.partner_bits & ~task.record_bits)
                for task in block
            )
            if full_record:
                rec_list = counts.tolist()
            else:
                rec_matrix = self._bitmap_matrix(
                    (task.record_bits or 0) & task.partner_bits
                    for task in block
                )
                rec_flags = rec_matrix[lhs_ord, partner_idx][order]
                rec_list = np.add.reduceat(
                    rec_flags.astype(np.int64), starts
                ).tolist()
            mask_array = np.empty(len(mask_objs), dtype=object)
            mask_array[:] = mask_objs
            unique_masks = mask_array[code_inverse].tolist()
            segments = np.searchsorted(unique_ord, np.arange(n_tasks + 1))
            for ordinal, task in enumerate(block):
                if task.record_bits is None:
                    continue
                start, end = segments[ordinal], segments[ordinal + 1]
                if full_record:
                    counter = dict(
                        zip(unique_masks[start:end], rec_list[start:end])
                    )
                else:
                    counter = {
                        mask: count
                        for mask, count in zip(
                            unique_masks[start:end], rec_list[start:end]
                        )
                        if count
                    }
                recorder.record(
                    task.rid, counter, task.partner_bits & task.record_bits
                )
