"""Pluggable evidence-construction backends.

Two kernels implement the same :class:`~repro.evidence.kernels.base.\
EvidenceKernel` interface:

- ``python`` — the dependency-free bigint context pipeline (the reference
  semantics, always available);
- ``numpy`` — columnar, batched vectorized comparison folding clue
  bitsets into evidence-context partitions (requires NumPy).

``auto`` (the default everywhere) picks ``numpy`` when NumPy is importable
and the relation is exactly representable in float64, and falls back to
``python`` otherwise.  Both backends are required to produce byte-identical
canonical state and identical deterministic work counters; the
differential suite (``tests/test_kernels.py``) and the CI bench gate
enforce that.

Backend choice — like the ``workers`` knob — is an execution setting of
one process, never part of the persisted data state.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.evidence.kernels.base import (
    CounterSink,
    EvidenceKernel,
    KernelStats,
    KernelUnsupported,
    ListRecorder,
    ReconcileTask,
    TupleIndexRecorder,
)
from repro.evidence.kernels.pure import PythonKernel
from repro.evidence.kernels.vectorized import VectorizedKernel, numpy_available
from repro.observability import get_logger
from repro.observability.probe import get_probe

logger = get_logger(__name__)

#: Accepted values for every ``backend`` knob (drivers, discoverer, CLI).
BACKENDS: Tuple[str, ...] = ("auto", "python", "numpy")
DEFAULT_BACKEND = "auto"


def validate_backend(name: Optional[str]) -> str:
    """Normalize and validate a backend name (``None`` → the default)."""
    resolved = name or DEFAULT_BACKEND
    if resolved not in BACKENDS:
        raise ValueError(
            f"unknown evidence backend {name!r}; expected one of "
            f"{', '.join(BACKENDS)}"
        )
    return resolved


def make_kernel(
    backend: Optional[str], relation, space, indexes
) -> EvidenceKernel:
    """Resolve a backend name to a kernel bound to the given snapshot.

    ``auto`` selects the vectorized kernel when it can run, the Python one
    otherwise.  An explicit ``numpy`` raises when NumPy is not installed,
    but still degrades (with a warning and a ``kernel.fallbacks`` counter
    tick) when the *data* is unrepresentable — representability can change
    from batch to batch, and failing mid-maintenance would help nobody.
    """
    name = validate_backend(backend)
    if name == "python":
        return PythonKernel(relation, space, indexes)
    if name == "numpy" and not numpy_available():
        raise RuntimeError(
            "backend 'numpy' requested but NumPy is not installed; "
            "use backend='auto' or backend='python'"
        )
    if not numpy_available():
        return PythonKernel(relation, space, indexes)
    try:
        return VectorizedKernel(relation, space, indexes)
    except KernelUnsupported as exc:
        probe = get_probe()
        if probe is not None:
            probe.inc("kernel.fallbacks")
        log = logger.warning if name == "numpy" else logger.debug
        log("vectorized kernel unavailable (%s); using the python backend", exc)
        return PythonKernel(relation, space, indexes)


__all__ = [
    "BACKENDS",
    "CounterSink",
    "DEFAULT_BACKEND",
    "EvidenceKernel",
    "KernelStats",
    "KernelUnsupported",
    "ListRecorder",
    "PythonKernel",
    "ReconcileTask",
    "TupleIndexRecorder",
    "VectorizedKernel",
    "make_kernel",
    "numpy_available",
    "validate_backend",
]
