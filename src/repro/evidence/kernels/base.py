"""Shared vocabulary of the pluggable evidence kernels.

A *kernel* executes a batch of reconciliation tasks — one per lhs tuple,
each against a partner bitmap — and folds the resulting evidence contexts
into an evidence sink, optionally recording per-tuple ownership for the
delete index.  Both backends (pure Python and NumPy-vectorized) implement
the same :class:`EvidenceKernel` interface and must produce *identical*
sink contents, ownership records, and work counters for any task batch;
that invariant is what the differential suite and the CI bench gate check.

The sink is anything with ``add(mask, count)`` — an
:class:`~repro.evidence.evidence_set.EvidenceSet` in the serial drivers, a
plain signed-counter wrapper in the parallel shard workers.  The recorder
receives ``(rid, owned_counter, partner_bits)`` triples in task order,
mirroring what :meth:`~repro.evidence.tuple_index.TupleEvidenceIndex.\
record_contexts` stores.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.observability.probe import get_probe


class KernelUnsupported(RuntimeError):
    """The backend cannot run this relation exactly (e.g. the vectorized
    kernel facing integers beyond float64's exact range).  The registry
    catches this and falls back to the pure-Python backend."""


@dataclass(frozen=True)
class ReconcileTask:
    """One lhs tuple's reconciliation work item.

    ``record_bits`` selects the partners whose pairs this tuple *owns* in
    the per-tuple evidence index (``None`` disables recording; ``0`` still
    records an empty entry, which the serial insert paths do for tuples
    without partners).
    """

    rid: int
    partner_bits: int
    record_bits: Optional[int] = None


@dataclass
class KernelStats:
    """Deterministic work counters of one kernel batch.

    All four are pure functions of the task batch and the data — never of
    wall time, backend, worker count, or machine — which is what lets the
    CI bench gate compare them against committed baselines.
    """

    pipelines: int = 0  # tasks with a non-empty partner set
    pairs: int = 0  # ordered pairs compared (Σ partner popcounts)
    contexts_out: int = 0  # evidence-context partitions produced
    pairs_inferred: int = 0  # symmetric evidences obtained by inference


class CounterSink:
    """Evidence sink folding into a plain signed counter dict (the shard
    workers' accumulation format)."""

    __slots__ = ("counts",)

    def __init__(self, counts: Optional[dict] = None):
        self.counts = counts if counts is not None else {}

    def add(self, mask: int, count: int) -> None:
        self.counts[mask] = self.counts.get(mask, 0) + count


class TupleIndexRecorder:
    """Ownership recorder writing straight into a
    :class:`~repro.evidence.tuple_index.TupleEvidenceIndex` (serial path)."""

    __slots__ = ("tuple_index",)

    def __init__(self, tuple_index):
        self.tuple_index = tuple_index

    def record(self, rid: int, owned_counter: dict, partner_bits: int) -> None:
        index = self.tuple_index
        counter = index.owned.get(rid)
        if counter is None:
            # Fresh entry (the overwhelmingly common case): one C-level
            # dict copy instead of a per-evidence merge loop.
            index.owned[rid] = dict(owned_counter)
            index.partners_of[rid] = (
                index.partners_of.get(rid, 0) | partner_bits
            )
            return
        for evidence, count in owned_counter.items():
            counter[evidence] = counter.get(evidence, 0) + count
        index.partners_of[rid] = index.partners_of.get(rid, 0) | partner_bits


class ListRecorder:
    """Ownership recorder buffering ``(rid, counter, partner_bits)`` triples
    (the shard workers' :attr:`ShardResult.tuple_records` format)."""

    __slots__ = ("records",)

    def __init__(self, records: Optional[list] = None):
        self.records = records if records is not None else []

    def record(self, rid: int, owned_counter: dict, partner_bits: int) -> None:
        self.records.append((rid, owned_counter, partner_bits))


class EvidenceKernel(ABC):
    """One evidence-construction backend bound to a relation snapshot.

    A kernel instance is built per maintenance operation (the vectorized
    backend materializes column arrays at construction time) and then runs
    one or more task batches via :meth:`reconcile`.
    """

    #: Registry name of the backend ("python" / "numpy").
    name: str = ""
    #: Whether :meth:`_emit_probe` re-emits the ``evidence.*`` counters.
    #: The pure-Python backend runs through ``build_contexts``, which
    #: emits them itself, so it opts out here.
    _probe_evidence_counters: bool = True

    def __init__(self, relation, space, indexes):
        self.relation = relation
        self.space = space
        self.indexes = indexes

    @abstractmethod
    def reconcile(
        self,
        tasks: Sequence[ReconcileTask],
        sink,
        recorder=None,
        symmetric_bits: Optional[int] = None,
    ) -> KernelStats:
        """Run the task batch, folding evidence into ``sink``.

        For every task the evidence of each (lhs, partner) ordered pair is
        added to ``sink`` once, plus the inferred symmetric evidence of the
        swapped pair for partners selected by ``symmetric_bits`` (``None``
        → all partners).  Tasks with ``record_bits`` set additionally emit
        one ownership record restricted to ``partner_bits & record_bits``.
        Returns the batch's work counters (also emitted to the active
        probe, if any).
        """

    def _emit_probe(self, stats: KernelStats) -> None:
        """Re-emit batch counters through the active probe using the same
        counter names the serial context pipeline increments, so backend
        choice never changes observable counted work."""
        probe = get_probe()
        if probe is None:
            return
        probe.inc("kernel.batches")
        probe.inc(f"kernel.batches.{self.name}")
        if not self._probe_evidence_counters:
            return
        if stats.pipelines:
            probe.inc("evidence.context_pipelines", stats.pipelines)
            probe.inc("evidence.pairs_compared", stats.pairs)
            probe.inc("evidence.contexts_out", stats.contexts_out)
            probe.inc(
                "evidence.index_probes", stats.pipelines * len(self.space.groups)
            )
        if stats.pairs_inferred:
            probe.inc("evidence.pairs_inferred", stats.pairs_inferred)


def ownership_counter(contexts: dict, record_bits: int) -> dict:
    """Aggregate reconciled contexts into an ownership counter restricted
    to ``record_bits`` partners (multiplicity per evidence mask)."""
    counter: dict = {}
    for evidence, bits in contexts.items():
        owned = bits & record_bits
        if owned:
            counter[evidence] = counter.get(evidence, 0) + owned.bit_count()
    return counter


def record_task(recorder, task: ReconcileTask, contexts: dict) -> None:
    """Emit one task's ownership record (no-op when recording is off)."""
    if recorder is None or task.record_bits is None:
        return
    owned_bits = task.partner_bits & task.record_bits
    recorder.record(
        task.rid, ownership_counter(contexts, task.record_bits), owned_bits
    )


__all__: List[str] = [
    "CounterSink",
    "EvidenceKernel",
    "KernelStats",
    "KernelUnsupported",
    "ListRecorder",
    "ReconcileTask",
    "TupleIndexRecorder",
    "ownership_counter",
    "record_task",
]
