"""Pure-Python evidence kernel — the dependency-free reference backend.

Runs the exact bigint context pipeline the serial drivers always used
(:func:`~repro.evidence.contexts.build_contexts` +
:func:`~repro.evidence.builder.collect_contexts`), wrapped in the kernel
interface so the drivers and shard workers are backend-agnostic.  This is
the semantics oracle the vectorized backend is differentially tested
against, and the automatic fallback when NumPy is absent or a column is
not exactly representable in float64.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.evidence.builder import collect_contexts
from repro.evidence.contexts import build_contexts
from repro.evidence.kernels.base import (
    EvidenceKernel,
    KernelStats,
    ReconcileTask,
    record_task,
)


class PythonKernel(EvidenceKernel):
    """Tuple-at-a-time context reconciliation over the column indexes."""

    name = "python"
    # build_contexts / collect_contexts emit the evidence.* counters
    # per pipeline themselves; the base emitter must not re-add them.
    _probe_evidence_counters = False

    def reconcile(
        self,
        tasks: Sequence[ReconcileTask],
        sink,
        recorder=None,
        symmetric_bits: Optional[int] = None,
    ) -> KernelStats:
        stats = KernelStats()
        space = self.space
        relation = self.relation
        indexes = self.indexes
        for task in tasks:
            contexts = build_contexts(
                space, relation, task.rid, task.partner_bits, indexes
            )
            if task.partner_bits:
                stats.pipelines += 1
                stats.pairs += task.partner_bits.bit_count()
                stats.contexts_out += len(contexts)
                stats.pairs_inferred += _inferred_count(
                    contexts, symmetric_bits
                )
            collect_contexts(space, contexts, sink, symmetric_bits)
            record_task(recorder, task, contexts)
        self._emit_probe(stats)
        return stats


def _inferred_count(contexts: dict, symmetric_bits: Optional[int]) -> int:
    if symmetric_bits is None:
        return sum(bits.bit_count() for bits in contexts.values())
    return sum(
        (bits & symmetric_bits).bit_count() for bits in contexts.values()
    )
