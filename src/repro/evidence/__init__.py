"""Evidence sets and their maintenance under inserts and deletes.

This package implements Section V of the paper: the evidence set with
multiplicities, the column indexes, the evidence-context reconciliation
pipeline (Algorithm 1), the insert and delete maintenance strategies, the
per-tuple evidence index, and a naive pair-scan oracle used for testing
and baselines.
"""

from repro.evidence.evidence_set import EvidenceSet
from repro.evidence.indexes import ColumnIndexes, EqualityIndex, RangeIndex
from repro.evidence.contexts import build_contexts
from repro.evidence.builder import (
    EvidenceEngineState,
    build_evidence_state,
    collect_contexts,
)
from repro.evidence.incremental import (
    apply_insert_evidence,
    incremental_evidence_for_insert,
)
from repro.evidence.deletes import (
    apply_delete_evidence,
    delete_evidence_by_recompute,
    delete_evidence_with_index,
)
from repro.evidence.tuple_index import TupleEvidenceIndex
from repro.evidence.naive import naive_evidence_set, naive_incremental_evidence
from repro.evidence.parallel import (
    fork_available,
    merge_shard_counts,
    resolve_workers,
    should_parallelize,
    stripe,
)

__all__ = [
    "fork_available",
    "merge_shard_counts",
    "resolve_workers",
    "should_parallelize",
    "stripe",
    "EvidenceSet",
    "ColumnIndexes",
    "EqualityIndex",
    "RangeIndex",
    "build_contexts",
    "EvidenceEngineState",
    "build_evidence_state",
    "collect_contexts",
    "incremental_evidence_for_insert",
    "apply_insert_evidence",
    "delete_evidence_by_recompute",
    "delete_evidence_with_index",
    "apply_delete_evidence",
    "TupleEvidenceIndex",
    "naive_evidence_set",
    "naive_incremental_evidence",
]
