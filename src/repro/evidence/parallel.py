"""Worker-pool execution layer for evidence construction.

Evidence-set maintenance dominates 3DC runtime (the paper's Figure 13
breakdown), yet every pair-reconciliation loop in this package was serial.
This module shards those loops into independent chunk tasks and runs them
on a ``concurrent.futures`` process pool:

- **static build** shards the alive-rid range: tuple ``t`` reconciles
  against the alive tuples after it, so each rid's work is independent
  given a snapshot of ``alive_bits``;
- **insert batches** shard ``Δr``: with the Opt strategy the *i*-th
  incremental tuple's partner set (statics plus later incrementals) is a
  pure function of the sorted batch, with Base it is "everyone but me";
- **deletes** shard the batch: the serial loops' ``processed``/
  ``remaining`` bookkeeping is a prefix of the *sorted* batch, so shard
  ``i`` recomputes its prefix bits instead of depending on shard ``i-1``;
  the index strategy additionally reads each dying tuple's own entry from
  the per-tuple evidence index, which no other shard touches.

Workers are forked (start method ``fork``), so the relation, predicate
space, column indexes, and tuple index are shared copy-on-write through
:data:`_SHARD_STATE` — nothing heavyweight is pickled per task.  Each
shard returns a plain evidence counter (with the symmetric inferences
already folded in, and *signed* counts for the delete-index strategy's
stale-pair corrections); the parent merges shards with a sorted-key merge
so the resulting :class:`~repro.evidence.evidence_set.EvidenceSet` is
identical for any worker count and any sharding.  Platforms without
``fork`` (and ``workers=1``) fall back to the serial implementations.

Rid assignment to shards is striped (``rids[shard_index::n_shards]``): in
the static build the per-rid cost shrinks with the rid (fewer partners
after it), so contiguous chunks would leave the last worker idle.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional

from repro.bitmaps.bitutils import bits_from, iter_bits
from repro.evidence.evidence_set import EvidenceSet
from repro.evidence.kernels.base import (
    CounterSink,
    ListRecorder,
    ReconcileTask,
)
from repro.observability import flight, get_logger
from repro.observability import probe as _probe_module
from repro.observability.probe import get_probe

logger = get_logger(__name__)

#: Fork-shared engine snapshot, set by the parent immediately before the
#: pool is created and cleared right after the gather.  Keys: ``relation``,
#: ``space``, ``indexes``, ``tuple_index``, ``alive_bits``.
_SHARD_STATE: Optional[dict] = None


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize the ``workers`` knob: ``None``/1 → serial, ``0`` or any
    negative value → one worker per CPU."""
    if workers is None:
        return 1
    if workers <= 0:
        return os.cpu_count() or 1
    return workers


def fork_available() -> bool:
    """Whether the platform supports fork-based worker pools."""
    return "fork" in multiprocessing.get_all_start_methods()


def should_parallelize(workers: int, n_items: int) -> bool:
    """Run on a pool only when it can actually split work: more than one
    worker requested, at least two shardable items, and ``fork`` present
    (without it the copy-on-write state sharing does not work)."""
    if workers <= 1 or n_items < 2:
        return False
    if not fork_available():
        logger.warning(
            "workers=%d requested but the 'fork' start method is "
            "unavailable on this platform; running serially", workers
        )
        return False
    return True


def stripe(items: list, n_shards: int) -> List[list]:
    """Deterministic striped partition: item ``i`` goes to shard
    ``i % n_shards``.  Striping keeps shard loads even when per-item cost
    decreases along the list (the static build's triangular pair count)."""
    n_shards = max(1, min(n_shards, len(items)))
    return [items[shard::n_shards] for shard in range(n_shards)]


@dataclass
class ShardResult:
    """One shard's partial evidence plus its accounting.

    ``counts`` is a signed evidence counter — the delete-index strategy
    subtracts stale-pair corrections that another shard's additions cover;
    only the merged totals must be non-negative.  ``tuple_records`` carries
    ``(rid, owned_counter, partner_bits)`` entries for the per-tuple
    evidence index when the caller maintains one.
    """

    counts: dict
    tuple_records: list = field(default_factory=list)
    pipelines: int = 0
    pairs: int = 0
    contexts_out: int = 0
    pairs_inferred: int = 0
    duration: float = 0.0
    backend: str = ""


def merge_shard_counts(results: List[ShardResult]) -> EvidenceSet:
    """Sorted-key merge of the shards' signed counters.

    Totals are accumulated per mask and inserted in ascending-mask order,
    so the merged set's contents *and* iteration order are independent of
    worker count, sharding, and completion order.

    :raises ValueError: if any merged multiplicity is negative — that
        always means a shard kernel diverged from its serial counterpart.
    """
    totals: dict = {}
    for shard in results:
        for mask, count in shard.counts.items():
            totals[mask] = totals.get(mask, 0) + count
    merged = EvidenceSet()
    for mask in sorted(totals):
        count = totals[mask]
        if count < 0:
            raise ValueError(
                f"negative merged multiplicity {count} for evidence "
                f"{mask:#x} — shard results are inconsistent"
            )
        if count:
            merged.add(mask, count)
    return merged


def apply_tuple_records(tuple_index, results: List[ShardResult]) -> None:
    """Install the shards' per-tuple ownership records, in rid order."""
    from repro.evidence.kernels.base import TupleIndexRecorder

    recorder = TupleIndexRecorder(tuple_index)
    records = [record for shard in results for record in shard.tuple_records]
    for rid, owned_counter, partner_bits in sorted(records):
        recorder.record(rid, owned_counter, partner_bits)


def report_shards(
    results: List[ShardResult], workers: int, n_groups: int
) -> None:
    """Feed per-shard spans' worth of accounting into the active probe.

    Worker processes cannot reach the parent's metrics registry, so each
    shard measures itself and the parent re-emits the aggregate here: the
    serial continuity counters (``evidence.*``) plus the ``parallel.*``
    family described in docs/observability.md.
    """
    probe = get_probe()
    if probe is None:
        return
    probe.inc("parallel.batches")
    probe.inc("parallel.shards", len(results))
    probe.set_gauge("parallel.workers", workers)
    for shard in results:
        probe.observe("parallel.shard_seconds", shard.duration)
        probe.observe("parallel.shard_pairs", shard.pairs)
        if shard.backend:
            probe.inc("kernel.batches")
            probe.inc(f"kernel.batches.{shard.backend}")
        probe.inc("evidence.context_pipelines", shard.pipelines)
        probe.inc("evidence.pairs_compared", shard.pairs)
        probe.inc("evidence.contexts_out", shard.contexts_out)
        probe.inc("evidence.index_probes", shard.pipelines * n_groups)
        if shard.pairs_inferred:
            probe.inc("evidence.pairs_inferred", shard.pairs_inferred)


def run_shards(context: dict, specs: List[dict], workers: int) -> List[ShardResult]:
    """Scatter ``specs`` over a fork pool and gather results in spec order.

    ``context`` becomes the fork-shared :data:`_SHARD_STATE`.  Results are
    returned in submission order (``Executor.map`` semantics), so callers
    can merge without caring which worker finished first.
    """
    global _SHARD_STATE
    _SHARD_STATE = context
    try:
        mp_context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=min(workers, len(specs)), mp_context=mp_context
        ) as pool:
            results = list(pool.map(_run_shard, specs))
        report_shards(results, workers, len(context["space"].groups))
        # Mirror the shards into the flight recorder (no-op unless the
        # serving layer installed one and a trace context is active).
        flight.record_shard_spans(results)
    finally:
        _SHARD_STATE = None
    return results


# -- worker-side kernels ------------------------------------------------------


def _run_shard(spec: dict) -> ShardResult:
    """Worker entry point: dispatch one shard spec against the fork-shared
    engine snapshot."""
    # The fork inherited the parent's active probe; per-pair accounting in
    # the child would be lost at process exit, so switch it off and let
    # report_shards() re-emit the aggregate in the parent.
    _probe_module._ACTIVE = None
    state = _SHARD_STATE
    if state is None:
        raise RuntimeError(
            "_run_shard outside a fork-shared context "
            "(spawn start method cannot run evidence shards)"
        )
    started = time.perf_counter()
    kind = spec["kind"]
    if kind == "static":
        result = _shard_static(state, spec)
    elif kind == "insert_opt":
        result = _shard_insert_opt(state, spec)
    elif kind == "insert_base":
        result = _shard_insert_base(state, spec)
    elif kind == "delete_index":
        result = _shard_delete_index(state, spec)
    elif kind == "delete_recompute":
        result = _shard_delete_recompute(state, spec)
    else:
        raise ValueError(f"unknown shard kind {kind!r}")
    result.duration = time.perf_counter() - started
    return result


def _run_tasks(state, result, tasks, symmetric_bits=None, recorder=None):
    """Run a shard's task batch on the fork-shared kernel, folding the
    evidence into the shard's plain counter and accumulating its work
    counters."""
    kernel = state["kernel"]
    stats = kernel.reconcile(
        tasks, CounterSink(result.counts), recorder, symmetric_bits
    )
    result.backend = kernel.name
    result.pipelines += stats.pipelines
    result.pairs += stats.pairs
    result.contexts_out += stats.contexts_out
    result.pairs_inferred += stats.pairs_inferred


def _shard_static(state, spec) -> ShardResult:
    """Static build: rid reconciles against the alive rids after it."""
    result = ShardResult(counts={})
    alive_bits = state["alive_bits"]
    record = state["tuple_index"] is not None
    tasks = []
    for rid in spec["rids"]:
        partners = alive_bits & ~((1 << (rid + 1)) - 1)
        # `if partners`: the serial scan breaks before recording the last
        # alive rid (it has no partners after it), so an entry for it
        # would make the index differ from a serial build.
        if not partners:
            continue
        tasks.append(
            ReconcileTask(rid, partners, partners if record else None)
        )
    recorder = ListRecorder(result.tuple_records) if record else None
    _run_tasks(state, result, tasks, recorder=recorder)
    return result


def _shard_insert_opt(state, spec) -> ShardResult:
    """Insert, Opt strategy: rid reconciles against the static tuples plus
    the incremental tuples after it; symmetric evidence inferred for all."""
    result = ShardResult(counts={})
    delta_bits = bits_from(spec["delta_list"])
    static_bits = state["alive_bits"] & ~delta_bits
    record = state["tuple_index"] is not None
    tasks = []
    for rid in spec["rids"]:
        later_delta = delta_bits & ~((1 << (rid + 1)) - 1)
        partners = static_bits | later_delta
        # Incremental tuples get an index entry even with no partners.
        tasks.append(
            ReconcileTask(rid, partners, partners if record else None)
        )
    recorder = ListRecorder(result.tuple_records) if record else None
    _run_tasks(state, result, tasks, recorder=recorder)
    return result


def _shard_insert_base(state, spec) -> ShardResult:
    """Insert, Base strategy: rid reconciles against everyone else;
    inference only for static partners (delta pairs run both directions)."""
    result = ShardResult(counts={})
    delta_bits = bits_from(spec["delta_list"])
    static_bits = state["alive_bits"] & ~delta_bits
    all_bits = static_bits | delta_bits
    record = state["tuple_index"] is not None
    tasks = []
    for rid in spec["rids"]:
        # Single-owner-per-pair bookkeeping: record the static pairs plus
        # the delta partners after this tuple (mirrors the serial path).
        later_delta = delta_bits & ~((1 << (rid + 1)) - 1)
        tasks.append(
            ReconcileTask(
                rid,
                all_bits & ~(1 << rid),
                (static_bits | later_delta) if record else None,
            )
        )
    recorder = ListRecorder(result.tuple_records) if record else None
    _run_tasks(
        state, result, tasks, symmetric_bits=static_bits, recorder=recorder
    )
    return result


def _prefix_bits(delete_list: List[int], wanted: set) -> dict:
    """``position → bits of delete_list[:position]`` for the wanted
    positions, built in one pass over the sorted batch."""
    prefixes = {}
    accumulated = 0
    for position, rid in enumerate(delete_list):
        if position in wanted:
            prefixes[position] = accumulated
        accumulated |= 1 << rid
    if len(delete_list) in wanted:
        prefixes[len(delete_list)] = accumulated
    return prefixes


def _shard_delete_index(state, spec) -> ShardResult:
    """Delete, index strategy: each dying tuple contributes its owned
    pairs from the per-tuple index (minus stale corrections) plus one
    pipeline over the alive, unprocessed, non-owned partners.

    ``processed`` for batch position ``i`` is the prefix ``delete_list[:i]``
    — a pure function of the sorted batch, which is what makes the serial
    loop shardable.
    """
    result = ShardResult(counts={})
    relation = state["relation"]
    space = state["space"]
    tuple_index = state["tuple_index"]
    alive_bits = state["alive_bits"]
    symmetrize = space.symmetrize
    evidence_of_pair = space.evidence_of_pair
    delete_list = spec["delete_list"]
    items = spec["items"]
    prefixes = _prefix_bits(delete_list, {position for position, _ in items})
    counts = result.counts
    tasks = []
    for position, rid in items:
        processed_bits = prefixes[position]
        rid_bit = 1 << rid
        partners = tuple_index.partners(rid)
        for evidence, count in tuple_index.owned_evidence(rid).items():
            counts[evidence] = counts.get(evidence, 0) + count
            symmetric = symmetrize(evidence)
            counts[symmetric] = counts.get(symmetric, 0) + count
        stale = partners & (~alive_bits | processed_bits)
        if stale:
            row = relation.row(rid)
            for partner in iter_bits(stale):
                evidence = evidence_of_pair(row, relation.row(partner))
                counts[evidence] = counts.get(evidence, 0) - 1
                symmetric = symmetrize(evidence)
                counts[symmetric] = counts.get(symmetric, 0) - 1
        others = alive_bits & ~processed_bits & ~partners & ~rid_bit
        if others:
            tasks.append(ReconcileTask(rid, others))
    if tasks:
        _run_tasks(state, result, tasks)
    return result


def _shard_delete_recompute(state, spec) -> ShardResult:
    """Delete, recompute strategy: batch position ``i`` reconciles against
    the alive tuples minus the batch prefix ``delete_list[:i+1]``."""
    result = ShardResult(counts={})
    alive_bits = state["alive_bits"]
    delete_list = spec["delete_list"]
    items = spec["items"]
    prefixes = _prefix_bits(
        delete_list, {position + 1 for position, _ in items}
    )
    tasks = [
        ReconcileTask(rid, alive_bits & ~prefixes[position + 1])
        for position, rid in items
    ]
    _run_tasks(state, result, tasks)
    return result


# -- parent-side orchestration -------------------------------------------------


def _context(relation, space, indexes, tuple_index, backend) -> dict:
    """Build the fork-shared engine snapshot.  The kernel is constructed
    in the parent — its column arrays (and any backend fallback decision,
    with its probe tick) are shared copy-on-write with every worker."""
    from repro.evidence.kernels import make_kernel

    return {
        "relation": relation,
        "space": space,
        "indexes": indexes,
        "tuple_index": tuple_index,
        "alive_bits": relation.alive_bits,
        "kernel": make_kernel(backend, relation, space, indexes),
    }


def parallel_static_evidence(
    relation, space, indexes, tuple_index, workers: int, backend=None
) -> EvidenceSet:
    """Sharded static evidence build; populates ``tuple_index`` when given.
    The caller has already decided to parallelize (``should_parallelize``)."""
    rids = list(relation.rids())
    specs = [
        {"kind": "static", "rids": shard}
        for shard in stripe(rids, workers)
    ]
    results = run_shards(
        _context(relation, space, indexes, tuple_index, backend),
        specs,
        workers,
    )
    if tuple_index is not None:
        apply_tuple_records(tuple_index, results)
    return merge_shard_counts(results)


def parallel_insert_evidence(
    relation,
    state,
    delta_list: List[int],
    infer_within_delta: bool,
    workers: int,
    backend=None,
) -> EvidenceSet:
    """Sharded ``E_Δr`` computation for an insert batch (already inserted
    into the relation and indexed, exactly as the serial precondition)."""
    kind = "insert_opt" if infer_within_delta else "insert_base"
    specs = [
        {"kind": kind, "rids": shard, "delta_list": delta_list}
        for shard in stripe(delta_list, workers)
    ]
    results = run_shards(
        _context(
            relation, state.space, state.indexes, state.tuple_index, backend
        ),
        specs,
        workers,
    )
    if state.tuple_index is not None:
        apply_tuple_records(state.tuple_index, results)
    return merge_shard_counts(results)


def parallel_delete_evidence(
    relation,
    state,
    delete_list: List[int],
    strategy: str,
    workers: int,
    backend=None,
) -> EvidenceSet:
    """Sharded ``E_Δr`` computation for a delete batch (rows still alive
    and indexed).  For the index strategy the per-tuple records of the
    dying tuples are dropped after the gather, as the serial loop does."""
    kind = "delete_index" if strategy == "index" else "delete_recompute"
    items = list(enumerate(delete_list))
    specs = [
        {"kind": kind, "items": shard, "delete_list": delete_list}
        for shard in stripe(items, workers)
    ]
    results = run_shards(
        _context(
            relation, state.space, state.indexes, state.tuple_index, backend
        ),
        specs,
        workers,
    )
    if kind == "delete_index":
        for rid in delete_list:
            state.tuple_index.drop_tuple(rid)
    return merge_shard_counts(results)
