"""Distributed execution layer for evidence construction.

Evidence-set maintenance dominates 3DC runtime (the paper's Figure 13
breakdown).  This module decomposes each maintenance operation — static
build, insert batch, delete batch — into the shard×shard pair grid of
:mod:`repro.evidence.executors.grid` and runs the resulting blocks on a
pluggable :class:`~repro.evidence.executors.ShardExecutor`:

- ``fork`` (the default where available) shares the engine snapshot with
  forked workers copy-on-write — nothing heavyweight is pickled;
- ``spawn`` pickles the snapshot to fresh-interpreter workers for
  platforms without ``fork``;
- ``socket`` drives separate worker processes over crc32-framed loopback
  TCP — the stepping stone to multi-host;
- ``serial`` runs the grid in-process (no pools), which is also the
  degradation target when workers die.

Each block returns a plain evidence counter (symmetric inferences folded
in, *signed* counts for the delete-index strategy's stale-pair
corrections); the parent merges blocks with a sorted-key merge so the
resulting :class:`~repro.evidence.evidence_set.EvidenceSet` is
byte-identical to a serial build for any executor backend, worker count,
shard count, and task completion order.  ``workers=1`` and platforms
where the requested executor cannot run fall back to the serial
implementations (reported through the ``parallel.fallback`` counter).
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.evidence.evidence_set import EvidenceSet

# Re-exported so existing imports (tests, evidence/__init__) keep working
# after the executor refactor.
from repro.evidence.executors.base import (  # noqa: F401
    ShardResult,
    fork_available,
)
from repro.evidence.executors import (
    make_executor,
    resolve_executor,
)
from repro.evidence.executors.grid import grid_shard_count, plan_blocks
from repro.observability import flight, get_logger
from repro.observability.probe import get_probe

logger = get_logger(__name__)


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize the ``workers`` knob: ``None``/1 → serial, ``0`` or any
    negative value → one worker per CPU."""
    if workers is None:
        return 1
    if workers <= 0:
        return os.cpu_count() or 1
    return workers


def should_parallelize(
    workers: int, n_items: int, executor: Optional[str] = "auto"
) -> bool:
    """Run on an executor only when it can actually split work: more than
    one worker requested, at least two shardable items, and the requested
    executor available on this platform.

    An unavailable executor (today: explicit ``fork`` on a fork-less
    platform; ``auto`` resolves to ``spawn`` there instead) is a *loud*
    serial fallback: one warning plus the ``parallel.fallback`` counter,
    so a deployment that silently lost its parallelism shows up in
    metrics rather than in a latency graph.
    """
    if workers <= 1 or n_items < 2:
        return False
    if resolve_executor(executor) is None:
        logger.warning(
            "workers=%d requested but executor %r is unavailable on this "
            "platform; running serially", workers, executor,
        )
        probe = get_probe()
        if probe is not None:
            probe.inc("parallel.fallback")
        return False
    return True


def stripe(items: list, n_shards: int) -> List[list]:
    """Deterministic striped partition: item ``i`` goes to shard
    ``i % n_shards``.  Striping keeps shard loads even when per-item cost
    decreases along the list (the static build's triangular pair count)."""
    n_shards = max(1, min(n_shards, len(items)))
    return [items[shard::n_shards] for shard in range(n_shards)]


def merge_shard_counts(results: List[ShardResult]) -> EvidenceSet:
    """Sorted-key merge of the blocks' signed counters.

    Totals are accumulated per mask and inserted in ascending-mask order,
    so the merged set's contents *and* iteration order are independent of
    executor backend, worker count, sharding, and completion order.

    :raises ValueError: if any merged multiplicity is negative — that
        always means a block kernel diverged from its serial counterpart.
    """
    totals: dict = {}
    for shard in results:
        for mask, count in shard.counts.items():
            totals[mask] = totals.get(mask, 0) + count
    merged = EvidenceSet()
    for mask in sorted(totals):
        count = totals[mask]
        if count < 0:
            raise ValueError(
                f"negative merged multiplicity {count} for evidence "
                f"{mask:#x} — shard results are inconsistent"
            )
        if count:
            merged.add(mask, count)
    return merged


def apply_tuple_records(tuple_index, results: List[ShardResult]) -> None:
    """Install the blocks' per-tuple ownership records, in rid order.

    A rid's records are split across its grid blocks, so the sort key is
    the rid alone (the per-rid merge in the recorder is commutative
    addition / bit-OR; same-rid order cannot affect the result).
    """
    from repro.evidence.kernels.base import TupleIndexRecorder

    recorder = TupleIndexRecorder(tuple_index)
    records = [record for shard in results for record in shard.tuple_records]
    for rid, owned_counter, partner_bits in sorted(
        records, key=lambda record: record[0]
    ):
        recorder.record(rid, owned_counter, partner_bits)


def report_shards(
    results: List[ShardResult], workers: int, n_groups: int
) -> None:
    """Feed per-block spans' worth of accounting into the active probe.

    Worker processes cannot reach the parent's metrics registry, so each
    block measures itself and the parent re-emits the aggregate here: the
    serial continuity counters (``evidence.*``) plus the ``parallel.*``
    family described in docs/observability.md.
    """
    probe = get_probe()
    if probe is None:
        return
    probe.inc("parallel.batches")
    probe.inc("parallel.shards", len(results))
    probe.set_gauge("parallel.workers", workers)
    for shard in results:
        probe.observe("parallel.shard_seconds", shard.duration)
        probe.observe("parallel.shard_pairs", shard.pairs)
        if shard.backend:
            probe.inc("kernel.batches")
            probe.inc(f"kernel.batches.{shard.backend}")
        probe.inc("evidence.context_pipelines", shard.pipelines)
        probe.inc("evidence.pairs_compared", shard.pairs)
        probe.inc("evidence.contexts_out", shard.contexts_out)
        probe.inc("evidence.index_probes", shard.pipelines * n_groups)
        if shard.pairs_inferred:
            probe.inc("evidence.pairs_inferred", shard.pairs_inferred)


def report_executor(executor, n_shards: int) -> None:
    """Emit one grid run's dispatch accounting as ``executor.*`` metrics.

    ``tasks``/``grid_shards`` are deterministic for a given workload and
    shard count (bench_gate gates them); ``steals``/``redispatched`` and
    the per-run wall depend on scheduling and are observability only.
    """
    probe = get_probe()
    if probe is None:
        return
    stats = executor.stats
    probe.inc("executor.tasks", stats.tasks)
    probe.inc(f"executor.runs.{executor.name}")
    probe.set_gauge("executor.workers", stats.workers)
    probe.set_gauge("executor.grid_shards", n_shards)
    probe.inc("executor.bytes_shipped", stats.bytes_shipped)
    if stats.steals:
        probe.inc("executor.steals", stats.steals)
    if stats.redispatched:
        probe.inc("executor.redispatched", stats.redispatched)


def run_grid(
    context: dict,
    specs: List[dict],
    workers: int,
    executor_name: Optional[str],
    n_shards: int,
) -> List[ShardResult]:
    """Run one operation's grid blocks on the requested executor and
    gather results in spec order (the caller merges without caring which
    worker finished first)."""
    executor = make_executor(executor_name, workers)
    results = executor.run(context, specs)
    report_shards(results, workers, len(context["space"].groups))
    report_executor(executor, n_shards)
    # Mirror the blocks into the flight recorder (no-op unless the
    # serving layer installed one and a trace context is active).
    flight.record_shard_spans(results)
    return results


# -- parent-side orchestration -------------------------------------------------


def _context(relation, space, indexes, tuple_index, backend) -> dict:
    """Build the shared engine snapshot.  The kernel is constructed in the
    parent — fork workers share its column arrays copy-on-write; spawn and
    socket workers rebuild it from the ``backend`` name instead."""
    from repro.evidence.kernels import make_kernel

    return {
        "relation": relation,
        "space": space,
        "indexes": indexes,
        "tuple_index": tuple_index,
        "alive_bits": relation.alive_bits,
        "backend": backend,
        "kernel": make_kernel(backend, relation, space, indexes),
    }


def parallel_static_evidence(
    relation,
    space,
    indexes,
    tuple_index,
    workers: int,
    backend=None,
    executor: Optional[str] = "auto",
    shards: Optional[int] = None,
) -> EvidenceSet:
    """Pair-grid static evidence build; populates ``tuple_index`` when
    given.  The caller has already decided to parallelize
    (``should_parallelize``)."""
    n_items = len(list(relation.rids()))
    n_shards = grid_shard_count(workers, n_items, shards)
    results = run_grid(
        _context(relation, space, indexes, tuple_index, backend),
        plan_blocks("static", n_shards),
        workers,
        executor,
        n_shards,
    )
    if tuple_index is not None:
        apply_tuple_records(tuple_index, results)
    return merge_shard_counts(results)


def parallel_insert_evidence(
    relation,
    state,
    delta_list: List[int],
    infer_within_delta: bool,
    workers: int,
    backend=None,
    executor: Optional[str] = "auto",
    shards: Optional[int] = None,
) -> EvidenceSet:
    """Pair-grid ``E_Δr`` computation for an insert batch (already
    inserted into the relation and indexed, exactly as the serial
    precondition)."""
    kind = "insert_opt" if infer_within_delta else "insert_base"
    n_shards = grid_shard_count(workers, len(delta_list), shards)
    results = run_grid(
        _context(
            relation, state.space, state.indexes, state.tuple_index, backend
        ),
        plan_blocks(kind, n_shards, delta_list=delta_list),
        workers,
        executor,
        n_shards,
    )
    if state.tuple_index is not None:
        apply_tuple_records(state.tuple_index, results)
    return merge_shard_counts(results)


def parallel_delete_evidence(
    relation,
    state,
    delete_list: List[int],
    strategy: str,
    workers: int,
    backend=None,
    executor: Optional[str] = "auto",
    shards: Optional[int] = None,
) -> EvidenceSet:
    """Pair-grid ``E_Δr`` computation for a delete batch (rows still alive
    and indexed).  For the index strategy the per-tuple records of the
    dying tuples are dropped after the gather, as the serial loop does."""
    kind = "delete_index" if strategy == "index" else "delete_recompute"
    n_shards = grid_shard_count(workers, len(delete_list), shards)
    results = run_grid(
        _context(
            relation, state.space, state.indexes, state.tuple_index, backend
        ),
        plan_blocks(kind, n_shards, delete_list=delete_list),
        workers,
        executor,
        n_shards,
    )
    if kind == "delete_index":
        for rid in delete_list:
            state.tuple_index.drop_tuple(rid)
    return merge_shard_counts(results)
