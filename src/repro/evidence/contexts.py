"""Evidence-context reconciliation — the pipeline of Algorithm 1.

An evidence context ``(t, rids) → e`` states that every pair ``(t, t')``
with ``t' ∈ rids`` yields evidence ``e``.  For one tuple ``t`` the pipeline
starts from a single context mapping all partners to the low-selectivity
``ahead`` presumption (operators ``{≠, >, ≥}``; Section V-A) and runs one
reconciliation stage per predicate group: index probes split the partner
set into its *equal* / *greater* / *smaller* classes and rewrite the
group's bits.  Contexts with identical evidence are merged after every
stage, which is what exploits the evidence redundancy of [14].
"""

from __future__ import annotations

from repro.evidence.indexes import ColumnIndexes
from repro.observability.probe import get_probe
from repro.predicates.space import PredicateSpace
from repro.relational.relation import Relation


def build_contexts(
    space: PredicateSpace,
    relation: Relation,
    rid: int,
    partner_bits: int,
    indexes: ColumnIndexes,
) -> dict:
    """Reconciled evidence contexts for tuple ``rid`` against ``partner_bits``.

    Returns a mapping ``evidence mask → partner rid bits``; the values
    partition ``partner_bits``.  ``indexes`` must cover every partner rid.
    """
    if not partner_bits:
        return {}
    probe = get_probe()
    if probe is not None:
        probe.inc("evidence.context_pipelines")
        probe.inc("evidence.pairs_compared", partner_bits.bit_count())
        probe.inc("evidence.index_probes", len(space.groups))
    row = relation.row(rid)
    contexts = {space.ahead_mask: partner_bits}
    for group in space.groups:
        value = row[group.lhs_position]
        eq_bits, gt_bits = indexes.probe_group(group, value)
        eq_bits &= partner_bits
        gt_bits &= partner_bits
        if not eq_bits and not gt_bits:
            # Every partner is in the presumed 'smaller' class already.
            continue
        group_clear = ~group.mask
        group_eq = group.eq_bits
        group_gt = group.gt_bits
        group_lt = group.lt_bits
        refined = {}
        for evidence, bits in contexts.items():
            base = evidence & group_clear
            eq_class = bits & eq_bits
            if eq_class:
                key = base | group_eq
                refined[key] = refined.get(key, 0) | eq_class
                bits &= ~eq_class
                if not bits:
                    continue
            gt_class = bits & gt_bits
            if gt_class:
                key = base | group_gt
                refined[key] = refined.get(key, 0) | gt_class
                bits &= ~gt_class
                if not bits:
                    continue
            key = base | group_lt
            refined[key] = refined.get(key, 0) | bits
        contexts = refined
    if probe is not None:
        probe.inc("evidence.contexts_out", len(contexts))
    return contexts
