"""Evidence-set maintenance for deletes (Section V-C).

Two strategies compute the evidence ``E_Δr`` of all ordered pairs touching
the delete batch:

- :func:`delete_evidence_by_recompute` re-runs one context pipeline per
  deleted tuple against the not-yet-processed alive tuples (the direct
  approach);
- :func:`delete_evidence_with_index` retrieves each dying tuple's *owned*
  pairs from the per-tuple evidence index, corrects them lazily for
  partners that died before, and reconciles only the non-owned pairs
  (the faster approach, Figure 10).

Both must run *before* the rows are removed from the column indexes — the
dying tuples still need to be probed as partners.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.bitmaps.bitutils import iter_bits
from repro.evidence.builder import EvidenceEngineState
from repro.evidence.evidence_set import EvidenceSet
from repro.observability.probe import get_probe
from repro.relational.relation import Relation


def delete_evidence_by_recompute(
    relation: Relation,
    state: EvidenceEngineState,
    delete_rids: Iterable[int],
    workers: int = 1,
    backend: Optional[str] = None,
    executor: Optional[str] = "auto",
    shards: Optional[int] = None,
) -> EvidenceSet:
    """Recompute the evidence produced by the delete batch from scratch.

    Precondition: the batch rows are still alive in ``relation`` and still
    present in ``state.indexes``.

    :param workers: shard the batch over a process pool when > 1 (0 = one
        worker per CPU); results are identical for any worker count.
    :param backend: evidence-kernel backend (``None`` = auto); results
        are identical for any backend.
    """
    from repro.evidence import parallel
    from repro.evidence.kernels import make_kernel
    from repro.evidence.kernels.base import ReconcileTask

    delete_list = sorted(delete_rids)
    n_workers = parallel.resolve_workers(workers)
    if parallel.should_parallelize(n_workers, len(delete_list), executor):
        return parallel.parallel_delete_evidence(
            relation, state, delete_list, "recompute", n_workers, backend,
            executor=executor, shards=shards,
        )
    evidence_delta = EvidenceSet()
    remaining = relation.alive_bits
    tasks = []
    for rid in delete_list:
        remaining &= ~(1 << rid)
        tasks.append(ReconcileTask(rid, remaining))
    kernel = make_kernel(backend, relation, state.space, state.indexes)
    kernel.reconcile(tasks, evidence_delta)
    return evidence_delta


def delete_evidence_with_index(
    relation: Relation,
    state: EvidenceEngineState,
    delete_rids: Iterable[int],
    workers: int = 1,
    backend: Optional[str] = None,
    executor: Optional[str] = "auto",
    shards: Optional[int] = None,
) -> EvidenceSet:
    """Compute the delete batch's evidence using the per-tuple index.

    For each dying tuple ``t``:

    1. Its *owned* pairs come from the index.  The stored aggregate may
       include partners that died earlier (staleness is lazy); the
       evidence of those few both-dead pairs is recomputed directly from
       the retained row values and subtracted.
    2. Its *non-owned* pairs — partners that are alive, not yet processed
       in this batch, and not covered by the index entry — are reconciled
       with one context pipeline.

    Each unordered pair is thereby counted exactly once: pairs owned by a
    batch member are counted at the owner's step (1); pairs between ``t``
    and a surviving non-partner at ``t``'s step (2).

    :param workers: shard the batch over a process pool when > 1 (0 = one
        worker per CPU); results are identical for any worker count.
    :param backend: evidence-kernel backend (``None`` = auto); results
        are identical for any backend.
    :raises RuntimeError: when the engine state has no tuple index.
    """
    from repro.evidence import parallel
    from repro.evidence.kernels import make_kernel
    from repro.evidence.kernels.base import ReconcileTask

    tuple_index = state.tuple_index
    if tuple_index is None:
        raise RuntimeError(
            "delete_evidence_with_index requires a tuple evidence index; "
            "build the state with maintain_tuple_index=True"
        )
    delete_list = sorted(delete_rids)
    n_workers = parallel.resolve_workers(workers)
    if parallel.should_parallelize(n_workers, len(delete_list), executor):
        return parallel.parallel_delete_evidence(
            relation, state, delete_list, "index", n_workers, backend,
            executor=executor, shards=shards,
        )
    evidence_delta = EvidenceSet()
    space = state.space
    symmetrize = space.symmetrize
    alive_bits = relation.alive_bits  # batch rows are still alive here
    processed_bits = 0
    probe = get_probe()
    owned_pairs = 0
    stale_corrections = 0
    tasks = []

    for rid in delete_list:
        rid_bit = 1 << rid
        partners = tuple_index.partners(rid)
        # (1) Owned pairs, corrected for partners that are already gone
        # (died in an earlier batch, or processed earlier in this one).
        for evidence, count in tuple_index.owned_evidence(rid).items():
            evidence_delta.add(evidence, count)
            evidence_delta.add(symmetrize(evidence), count)
            owned_pairs += count
        stale = partners & (~alive_bits | processed_bits)
        if stale:
            stale_corrections += stale.bit_count()
            row = relation.row(rid)
            evidence_of_pair = space.evidence_of_pair
            for partner in iter_bits(stale):
                evidence = evidence_of_pair(row, relation.row(partner))
                evidence_delta.subtract(evidence, 1)
                evidence_delta.subtract(symmetrize(evidence), 1)
        # (2) Non-owned pairs with surviving, unprocessed tuples —
        # `processed` is a pure prefix function of the sorted batch, so
        # the pipelines can run as one kernel batch after this loop.
        others = alive_bits & ~processed_bits & ~partners & ~rid_bit
        if others:
            tasks.append(ReconcileTask(rid, others))
        processed_bits |= rid_bit

    if tasks:
        kernel = make_kernel(backend, relation, space, state.indexes)
        kernel.reconcile(tasks, evidence_delta)
    for rid in delete_list:
        tuple_index.drop_tuple(rid)

    if probe is not None:
        # Owned pairs come straight from the tuple index — each is one
        # reconciliation the Figure 10 "index" strategy avoided.
        probe.inc("evidence.index_owned_pairs", owned_pairs)
        probe.inc("evidence.stale_pair_corrections", stale_corrections)
    return evidence_delta


def apply_delete_evidence(
    state: EvidenceEngineState, evidence_delta: EvidenceSet
) -> list:
    """Subtract ``E_Δr`` from the running evidence set; return the masks
    whose multiplicity dropped to zero (the delete-case ``E^inc``)."""
    return state.evidence.subtract_all(evidence_delta)
