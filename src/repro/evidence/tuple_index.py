"""Per-tuple evidence index accelerating delete maintenance (Section V-C).

During evidence collection, each tuple that served as an evidence-context
*lhs* records the evidences it produced (aggregated with multiplicities)
together with the bitmap of partners those pairs involved.  When the tuple
is later deleted, its owned pairs come straight from the index; only the
pairs owned by *other* tuples still need one reconciliation pass — roughly
half the work of full recomputation.

Staleness is handled **lazily**: when a partner of an indexed tuple dies,
nothing is updated.  Instead, at the indexed tuple's own deletion, the
evidence of its pairs with already-dead partners (available from the
``partners & ~alive`` bitmap; dead rows keep their values) is recomputed
directly and subtracted from the stored aggregate.  Pairs where *both*
tuples die are rare relative to all pairs, so this trades a tiny amount of
recomputation for the removal of all per-pair cross-tuple bookkeeping —
which is what makes the strategy profitable in this substrate (see the
Figure 10 benchmark).
"""

from __future__ import annotations


class TupleEvidenceIndex:
    """Maps each lhs tuple to the evidence (with multiplicity) it owns."""

    __slots__ = ("owned", "partners_of")

    def __init__(self):
        self.owned = {}
        self.partners_of = {}

    def record_contexts(self, rid: int, contexts: dict) -> None:
        """Record the reconciled contexts of lhs tuple ``rid``.

        ``contexts`` maps evidence mask → partner rid bits, as produced by
        :func:`repro.evidence.contexts.build_contexts`.
        """
        counter = self.owned.setdefault(rid, {})
        partner_union = self.partners_of.get(rid, 0)
        for evidence, bits in contexts.items():
            if not bits:
                continue
            counter[evidence] = counter.get(evidence, 0) + bits.bit_count()
            partner_union |= bits
        self.partners_of[rid] = partner_union

    def owned_evidence(self, rid: int) -> dict:
        """Aggregated evidence counter of pairs owned by ``rid`` as
        recorded at build/insert time (may include dead partners — the
        caller corrects via :meth:`partners`)."""
        return self.owned.get(rid, {})

    def partners(self, rid: int) -> int:
        """Bit pattern of the partners of the pairs ``rid`` owns."""
        return self.partners_of.get(rid, 0)

    def compact(self, relation, space) -> None:
        """Apply all pending lazy corrections eagerly.

        Subtracts, from every owner's aggregate, the evidence of its pairs
        with partners that are no longer alive, and clears those partner
        bits.  Needed before serialization: the corrections require the
        dead rows' retained values, which a reloaded relation does not
        have (dead slots are placeholders).  Also usable periodically to
        bound the stale-pair backlog.
        """
        from repro.bitmaps.bitutils import iter_bits

        alive_bits = relation.alive_bits
        evidence_of_pair = space.evidence_of_pair
        for rid, partners in self.partners_of.items():
            stale = partners & ~alive_bits
            if not stale:
                continue
            counter = self.owned.get(rid, {})
            row = relation.row(rid)
            for partner in iter_bits(stale):
                evidence = evidence_of_pair(row, relation.row(partner))
                current = counter.get(evidence, 0)
                if current <= 0:
                    raise ValueError(
                        f"tuple {rid}: stale pair with {partner} not in its "
                        f"owned aggregate — index corrupted"
                    )
                if current == 1:
                    del counter[evidence]
                else:
                    counter[evidence] = current - 1
            self.partners_of[rid] = partners & alive_bits

    def stats(self) -> dict:
        """Structural statistics of the index (for ``repro-dc stats`` and
        the observability gauges): indexed tuples, total owned ordered
        pairs, and distinct evidence entries across all owners."""
        return {
            "tuples": len(self.owned),
            "owned_pairs": sum(
                sum(counter.values()) for counter in self.owned.values()
            ),
            "evidence_entries": sum(
                len(counter) for counter in self.owned.values()
            ),
        }

    def drop_tuple(self, rid: int) -> None:
        """Remove the records of ``rid`` after its deletion."""
        self.owned.pop(rid, None)
        self.partners_of.pop(rid, None)

    def __contains__(self, rid: int) -> bool:
        return rid in self.owned

    def __len__(self) -> int:
        return len(self.owned)
