"""DynHS — dynamic hitting-set DC enumeration (the baseline of [19]).

Ports the dynamic hitting-set maintenance of Xiao et al. [19] (designed
for difference sets in FD discovery) to evidence complements, as the paper
does for its baseline comparison.  The structural contrast with DynEI:

- DynHS keeps, for every current DC and every of its predicates, the
  explicit list of *critical* hyperedges, and must touch **every** DC on
  **every** evidence change to keep those lists exact;
- DynEI touches only the DCs a new evidence actually violates (found via
  the set-trie) and answers minimality with subset queries instead of
  criticality bookkeeping.

That per-change Σ-wide scan is what makes DynHS slower on DC workloads
with large Σ (Figures 11 and 12).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.bitmaps.bitutils import iter_bits
from repro.observability.probe import get_probe
from repro.predicates.space import PredicateSpace


def _vertices_of(mask: int):
    return list(iter_bits(mask))


class DynHS:
    """Stateful dynamic hitting-set enumerator over evidence complements."""

    def __init__(
        self,
        space: PredicateSpace,
        evidence_masks: Iterable[int] = (),
        bootstrap: str = "mmcs",
    ):
        self.space = space
        self._edges = {}  # edge id -> vertex mask (complement of evidence)
        self._edge_id_of = {}  # vertex mask -> edge id
        self._next_edge_id = 0
        # DC mask -> {vertex: set of critical edge ids}; starts from the
        # empty hitting set of the empty hypergraph.
        self._sigma = {0: {}}
        new_masks = list(evidence_masks)
        if new_masks:
            if bootstrap == "mmcs":
                self._bootstrap_from_mmcs(new_masks)
            else:
                self.insert_evidence(new_masks)

    def _bootstrap_from_mmcs(self, evidence_masks) -> None:
        """Initialize from a static MMCS run plus one criticality sweep.

        Enumerating the initial hitting sets edge-by-edge (the pure
        dynamic path) is much slower than one static MMCS pass followed by
        computing the exact criticality lists with a |Σ|·|E| scan.
        """
        from repro.enumeration.mmcs import mmcs_enumerate

        full_mask = self.space.full_mask
        for evidence in evidence_masks:
            edge = full_mask & ~evidence
            if edge not in self._edge_id_of:
                self._register_edge(edge)
        masks = mmcs_enumerate(self.space, evidence_masks)
        self._sigma = {}
        for dc_mask in masks:
            crit = {vertex: set() for vertex in _vertices_of(dc_mask)}
            for edge_id, edge in self._edges.items():
                hit = dc_mask & edge
                if hit and hit.bit_count() == 1:
                    crit[hit.bit_length() - 1].add(edge_id)
            self._sigma[dc_mask] = crit

    # -- public API ----------------------------------------------------------

    @property
    def dc_masks(self) -> List[int]:
        """Current minimal DC masks, sorted."""
        return sorted(self._sigma)

    def insert_evidence(self, new_evidence_masks: Iterable[int]) -> None:
        """Fold in evidences that newly appeared (insert case)."""
        full_mask = self.space.full_mask
        for evidence in new_evidence_masks:
            edge = full_mask & ~evidence
            if edge in self._edge_id_of:
                continue
            self._register_and_apply_edge(edge)

    def delete_evidence(
        self,
        removed_evidence_masks: Iterable[int],
        remaining_evidence_masks: Iterable[int],
    ) -> None:
        """Fold in evidences that disappeared (delete case).

        ``remaining_evidence_masks`` must be the distinct evidences still
        present; the re-grow pass scans them all, as in DynEI's delete.
        """
        full_mask = self.space.full_mask
        removed_ids = []
        for evidence in removed_evidence_masks:
            edge = full_mask & ~evidence
            edge_id = self._edge_id_of.pop(edge, None)
            if edge_id is not None:
                del self._edges[edge_id]
                removed_ids.append(edge_id)
        if not removed_ids:
            return
        if not self._edges:
            # Every evidence is gone (fewer than two tuples remain): the
            # empty hitting set is the only minimal one.
            self._sigma = {0: {}}
            return
        removed_id_set = set(removed_ids)
        # Drop the removed edges from every criticality list; DCs whose
        # predicate starves are only *possibly* non-minimal — remove them
        # conservatively and let the re-grow pass rebuild.
        survivors = {}
        for dc_mask, crit in self._sigma.items():
            starved = False
            for vertex in list(crit):
                crit[vertex] = crit[vertex] - removed_id_set
                if not crit[vertex]:
                    starved = True
            if not starved:
                survivors[dc_mask] = crit
        self._sigma = survivors
        self._seed_singles()
        for evidence in remaining_evidence_masks:
            edge = full_mask & ~evidence
            edge_id = self._edge_id_of.get(edge)
            if edge_id is None:
                edge_id = self._register_edge(edge)
            self._apply_edge(edge_id, edge)
        # Criticality lists are exact again: keep exactly the members
        # every predicate of which has a critical edge (= the minimal ones).
        self._sigma = {
            dc_mask: crit
            for dc_mask, crit in self._sigma.items()
            if all(crit.values()) or not dc_mask
        }
        if len(self._sigma) > 1 and 0 in self._sigma and self._edges:
            del self._sigma[0]

    # -- internals ---------------------------------------------------------------

    def _register_edge(self, edge: int) -> int:
        edge_id = self._next_edge_id
        self._next_edge_id += 1
        self._edges[edge_id] = edge
        self._edge_id_of[edge] = edge_id
        return edge_id

    def _register_and_apply_edge(self, edge: int) -> None:
        self._apply_edge(self._register_edge(edge), edge)

    def _apply_edge(self, edge_id: int, edge: int) -> None:
        """Make Σ the exact minimal-hitting-set family including ``edge``."""
        probe = get_probe()
        if probe is not None:
            # DynHS scans all of Σ per edge — the cost contrast with
            # DynEI that Figures 11/12 measure.
            probe.inc("enumeration.edges_applied")
            probe.inc("enumeration.sigma_scanned", len(self._sigma))
        satisfiable_with = self.space.satisfiable_with
        violated = []
        for dc_mask, crit in self._sigma.items():
            hit = dc_mask & edge
            if not hit:
                violated.append(dc_mask)
            elif hit.bit_count() == 1:
                crit_set = crit.get(hit.bit_length() - 1)
                if crit_set is not None:
                    crit_set.add(edge_id)
        for dc_mask in violated:
            parent_crit = self._sigma.pop(dc_mask)
            for vertex in iter_bits(edge):
                if not satisfiable_with(dc_mask, vertex):
                    continue
                candidate = dc_mask | (1 << vertex)
                if candidate in self._sigma:
                    continue
                new_crit = {}
                starved = False
                for member, member_edges in parent_crit.items():
                    filtered = {
                        eid
                        for eid in member_edges
                        if not (self._edges[eid] >> vertex) & 1
                    }
                    if not filtered:
                        starved = True
                        break
                    new_crit[member] = filtered
                if starved:
                    continue
                new_crit[vertex] = {edge_id}
                self._sigma[candidate] = new_crit

    def _seed_singles(self) -> None:
        """Add every single-predicate DC with its exact criticality lists
        (the edges containing only that vertex among the DC — i.e. all
        edges containing the vertex)."""
        for vertex in range(self.space.n_bits):
            single = 1 << vertex
            if single in self._sigma:
                continue
            crit = {
                vertex: {
                    eid
                    for eid, edge in self._edges.items()
                    if (edge >> vertex) & 1
                }
            }
            self._sigma[single] = crit


def dynhs_insert(
    space: PredicateSpace,
    previous_evidence_masks: Iterable[int],
    new_evidence_masks: Iterable[int],
) -> List[int]:
    """One-shot convenience wrapper: bootstrap on the previous evidence,
    then apply the insert delta and return the DC masks."""
    enumerator = DynHS(space, previous_evidence_masks)
    enumerator.insert_evidence(new_evidence_masks)
    return enumerator.dc_masks
