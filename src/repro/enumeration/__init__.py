"""DC enumeration engines (Section VI).

Four independently derived enumerators over evidence sets:

- :func:`~repro.enumeration.inversion.invert_evidence` — static evidence
  inversion (EI / Hydra [3]), the basis of 3DC's enumeration;
- :func:`~repro.enumeration.dynamic.dynei_insert` /
  :func:`~repro.enumeration.dynamic.dynei_delete` — **DynEI**, the paper's
  dynamic extension of EI;
- :func:`~repro.enumeration.mmcs.mmcs_enumerate` — minimal hitting set
  enumeration (Murakami & Uno [8], as used for DCs by [7]);
- :class:`~repro.enumeration.dynamic_hs.DynHS` — the dynamic hitting-set
  baseline [19];
- :func:`~repro.enumeration.dfs.dfs_enumerate` — FastDC-style depth-first
  search [4].

All return DC predicate-set bitmasks over a
:class:`~repro.predicates.space.PredicateSpace`.
"""

from repro.enumeration.settrie import SetTrie
from repro.enumeration.inversion import invert_evidence, minimize_masks, refine_sigma
from repro.enumeration.dynamic import dynei_delete, dynei_insert
from repro.enumeration.mmcs import complement_edges, mmcs_enumerate, mmcs_hitting_sets
from repro.enumeration.dynamic_hs import DynHS, dynhs_insert
from repro.enumeration.dfs import dfs_enumerate

__all__ = [
    "SetTrie",
    "invert_evidence",
    "minimize_masks",
    "refine_sigma",
    "dynei_insert",
    "dynei_delete",
    "complement_edges",
    "mmcs_enumerate",
    "mmcs_hitting_sets",
    "DynHS",
    "dynhs_insert",
    "dfs_enumerate",
]
