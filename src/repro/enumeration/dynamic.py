"""DynEI — dynamic DC enumeration (Section VI).

Operates on evidence-set *changes*, not tuples:

- **Inserts** (Algorithm 2): inserts can only add evidence, so previously
  valid DCs can only become violated.  Starting from the previous
  antichain ``Σ``, only the genuinely new evidence masks
  ``E^inc = E_Δr \\ E_r`` are folded in.
- **Deletes**: removed evidence can only make DCs *non-minimal*.  Each
  removed evidence can have been critical for at most one predicate of a
  DC [7], [8], [19]; DCs for which a removed evidence was critical (the
  evidence contains all but exactly one of their predicates) are
  conservatively dropped, exactly as in the paper.

For the delete re-grow, the paper re-runs an EI pass over the entire
remaining evidence, seeded with single-predicate DCs and pruned by the
surviving DCs (Section VI-B).  This implementation exploits a sharper
structural fact to make the re-grow *targeted* while producing the same
output (cross-checked against static recomputation in the test suite):

    Every DC that is minimal for ``E_left`` but was not in the previous
    ``Σ`` is contained in some **removed** evidence.

Proof: let ``m`` be minimal-valid for ``E_left`` with ``m ∉ Σ``.  Were
``m`` valid for the old ``E`` too, each proper subset of ``m`` would be
invalid for ``E_left`` (else ``m`` is non-minimal) and hence invalid for
``E ⊇ E_left`` — making ``m`` minimal-valid for ``E``, i.e. ``m ∈ Σ``,
a contradiction.  So ``m`` was *invalid* for ``E``: some old evidence
contains it, and that evidence cannot remain (it would still invalidate
``m``) — it is one of the removed ones.  ∎

The re-grow therefore only (i) re-checks the conservatively dropped DCs
for minimality against the remaining evidence (they cannot be contained
in removed evidence, having been valid for ``E``), and (ii) enumerates,
per removed evidence, the minimal hitting sets of the remaining-evidence
complements restricted to subsets of that evidence — a tiny MMCS run.
A final minimization restores the antichain across the three sources.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.enumeration.inversion import maximal_masks, minimize_masks, refine_sigma
from repro.enumeration.mmcs import mmcs_hitting_sets
from repro.enumeration.settrie import SetTrie
from repro.observability.probe import get_probe
from repro.predicates.space import PredicateSpace


def dynei_insert(
    space: PredicateSpace,
    sigma_masks: Sequence[int],
    new_evidence_masks: Iterable[int],
) -> List[int]:
    """Update the DC antichain after an insert batch.

    :param sigma_masks: minimal DC masks valid before the insert.
    :param new_evidence_masks: ``E^inc`` — evidence masks present after the
        insert that did not exist before (from
        :func:`repro.evidence.incremental.apply_insert_evidence`).
    """
    sigma = SetTrie(sigma_masks)
    refine_sigma(space, sigma, maximal_masks(new_evidence_masks))
    return sorted(sigma.masks())


def _still_minimal(dc_mask: int, remaining_masks: Sequence[int]) -> bool:
    """Whether a valid DC stays minimal: every predicate must have a
    critical evidence among the remaining ones (``dc ∖ e`` = that single
    predicate) [7], [8]."""
    marked = 0
    for evidence in remaining_masks:
        missing = dc_mask & ~evidence
        if missing and missing & (missing - 1) == 0:
            marked |= missing
            if marked == dc_mask:
                return True
    return marked == dc_mask


def _minimize_edges(edges: List[int]) -> List[int]:
    """Keep only the minimal restricted edges (supersets are implied)."""
    unique = sorted(set(edges), key=lambda edge: edge.bit_count())
    kept: List[int] = []
    for edge in unique:
        if any(small & edge == small for small in kept):
            continue
        kept.append(edge)
    return kept


def dynei_delete(
    space: PredicateSpace,
    sigma_masks: Sequence[int],
    removed_evidence_masks: Sequence[int],
    remaining_evidence_masks: Iterable[int],
    verifier=None,
) -> List[int]:
    """Update the DC antichain after a delete batch.

    :param sigma_masks: minimal DC masks valid before the delete.
    :param removed_evidence_masks: evidence masks whose multiplicity
        dropped to zero (from
        :func:`repro.evidence.deletes.apply_delete_evidence`).
    :param remaining_evidence_masks: all distinct evidence masks still in
        the evidence set (``E^left``).
    :param verifier: optional
        :class:`~repro.verification.Verifier` over the *post-delete*
        relation; when given, the minimality re-check of conservatively
        dropped DCs runs as near-linear index sweeps (is ``dc ∖ {p}``
        violated?) instead of a scan over all remaining evidence.  A
        dropped DC stays valid after a delete, so any remaining evidence
        containing ``dc ∖ {p}`` necessarily lacks ``p`` — both checks are
        exactly equivalent and the output antichain is identical.
    """
    if not removed_evidence_masks:
        return sorted(sigma_masks)

    remaining = list(remaining_evidence_masks)
    full_mask = space.full_mask

    # (1) Conservative split: a removed evidence was critical for a
    # predicate of a DC iff it contained every other predicate.
    complements = [full_mask & ~evidence for evidence in removed_evidence_masks]
    survivors: List[int] = []
    dropped: List[int] = []
    for dc_mask in sigma_masks:
        was_critical = False
        for complement in complements:
            hit = dc_mask & complement
            if hit and hit & (hit - 1) == 0:
                was_critical = True
                break
        if was_critical:
            dropped.append(dc_mask)
        else:
            survivors.append(dc_mask)

    # (2) Exact minimality re-check of the conservatively dropped DCs.
    if verifier is not None:
        readded = [dc_mask for dc_mask in dropped if verifier.is_minimal(dc_mask)]
    else:
        readded = [
            dc_mask for dc_mask in dropped if _still_minimal(dc_mask, remaining)
        ]

    # (3) Targeted re-grow: new minimal DCs live inside removed evidences.
    remaining_complements = [full_mask & ~evidence for evidence in remaining]
    new_masks: List[int] = []
    for removed in removed_evidence_masks:
        restricted = _minimize_edges(
            [complement & removed for complement in remaining_complements]
        )
        new_masks.extend(
            mmcs_hitting_sets(space, restricted, universe_mask=removed)
        )

    probe = get_probe()
    if probe is not None:
        probe.inc("enumeration.dcs_dropped", len(dropped))
        probe.inc("enumeration.dcs_readded", len(readded))
        probe.inc("enumeration.dcs_regrown", len(new_masks))
    return sorted(minimize_masks(survivors + readded + new_masks))
