"""MMCS — minimal hitting set enumeration (Murakami & Uno [8]).

DC enumeration is hitting-set enumeration over the *complements* of the
evidences [7]: a DC is valid iff its predicate set intersects ``P \\ e``
for every evidence ``e``.  MMCS explores hitting sets depth-first while
maintaining, for every chosen vertex, its set of *critical* hyperedges
(edges hit by that vertex alone); a branch is pruned as soon as a chosen
vertex loses all critical edges, which guarantees only minimal hitting
sets are emitted — no post-minimization needed.

Trivial-DC pruning composes soundly: every subset of a satisfiable
predicate set is satisfiable, so pruning unsatisfiable partial sets never
blocks the path to a satisfiable minimal hitting set.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.bitmaps.bitutils import iter_bits
from repro.observability.probe import get_probe
from repro.predicates.space import PredicateSpace


def complement_edges(space: PredicateSpace, evidence_masks: Iterable[int]) -> List[int]:
    """Deduplicated, minimized hyperedges ``P \\ e``.

    An edge that is a superset of another is hit whenever the smaller one
    is, so it can be dropped without changing the minimal hitting sets.
    """
    full_mask = space.full_mask
    edges = sorted(
        {full_mask & ~evidence for evidence in evidence_masks},
        key=lambda mask: mask.bit_count(),
    )
    minimized = []
    for edge in edges:
        if any(kept & edge == kept for kept in minimized):
            continue
        minimized.append(edge)
    return minimized


def mmcs_hitting_sets(
    space: PredicateSpace, edges: List[int], universe_mask: int = None
) -> List[int]:
    """All minimal, satisfiable hitting sets of ``edges`` as bitmasks.

    :param universe_mask: restrict hitting sets to subsets of this mask
        (used by DynEI's targeted delete re-grow); edges that do not
        intersect the universe make the problem infeasible and yield [].
    """
    results = []
    if universe_mask is None:
        universe_mask = space.full_mask
    if not edges:
        return [0]
    if any(edge & universe_mask == 0 for edge in edges):
        return []
    satisfiable_with = space.satisfiable_with
    n_edges = len(edges)
    nodes = [0]  # search-node counter (one cell: cheap nonlocal increment)

    def recurse(current: int, crit: dict, uncov: list, cand: int) -> None:
        nodes[0] += 1
        if not uncov:
            results.append(current)
            return
        # Choose the uncovered edge with the fewest candidate vertices.
        chosen = min(uncov, key=lambda index: (edges[index] & cand).bit_count())
        branch_vertices = edges[chosen] & cand
        if not branch_vertices:
            return
        remaining_cand = cand
        for vertex in iter_bits(branch_vertices):
            remaining_cand &= ~(1 << vertex)
            if not satisfiable_with(current, vertex):
                continue
            # New criticality: vertices of `current` keep only critical
            # edges the new vertex does not hit; prune when one starves.
            new_crit = {}
            starved = False
            for member, member_edges in crit.items():
                filtered = [
                    index for index in member_edges if not (edges[index] >> vertex) & 1
                ]
                if not filtered:
                    starved = True
                    break
                new_crit[member] = filtered
            if starved:
                continue
            new_crit[vertex] = [
                index for index in uncov if (edges[index] >> vertex) & 1
            ]
            new_uncov = [
                index for index in uncov if not (edges[index] >> vertex) & 1
            ]
            recurse(current | (1 << vertex), new_crit, new_uncov, remaining_cand)

    recurse(0, {}, list(range(n_edges)), universe_mask)
    probe = get_probe()
    if probe is not None:
        probe.inc("enumeration.search_nodes", nodes[0])
        probe.inc("enumeration.hitting_sets", len(results))
    return results


def mmcs_enumerate(
    space: PredicateSpace, evidence_masks: Iterable[int]
) -> List[int]:
    """Enumerate all minimal non-trivial DC masks via hitting sets."""
    edges = complement_edges(space, evidence_masks)
    return sorted(mmcs_hitting_sets(space, edges))
