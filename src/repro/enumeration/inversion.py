"""Static evidence inversion (the EI algorithm of Hydra [3]).

DC validity reduces to hitting sets: ``φ`` is valid iff no evidence
contains all of its predicates, i.e. ``φ`` hits every *complement*
``P \\ e``.  Evidence inversion maintains the antichain of minimal valid
DCs while folding in one evidence at a time: DCs contained in the new
evidence are violated and get *refined* by extending them with predicates
outside the evidence; refinements dominated by current DCs are dropped,
and unsatisfiable (trivial-DC) refinements are pruned at generation time —
every subset of a satisfiable predicate set is satisfiable, so this loses
no minimal non-trivial DC.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.bitmaps.bitutils import iter_bits
from repro.enumeration.settrie import SetTrie
from repro.observability.probe import get_probe
from repro.predicates.space import PredicateSpace


def refine_sigma(
    space: PredicateSpace,
    sigma: SetTrie,
    evidence_masks: Iterable[int],
    blocking_sigma: Optional[SetTrie] = None,
) -> SetTrie:
    """Fold ``evidence_masks`` into the DC antichain ``sigma`` (in place).

    This is the core loop shared by the static EI bootstrap and the DynEI
    insert/delete passes (Algorithm 2 lines 3-9).  Returns ``sigma``.

    :param blocking_sigma: an additional trie of DCs that are known valid
        for every mask in ``evidence_masks`` and should prune candidates
        but never be refined themselves.  DynEI's delete pass passes the
        surviving DCs here so the re-grow loop only carries the (small)
        working set of seed descendants.
    """
    full_mask = space.full_mask
    satisfiable_with = space.satisfiable_with
    probe = get_probe()
    evidences_folded = 0
    dcs_refined = 0
    candidates_inserted = 0
    for evidence in evidence_masks:
        evidences_folded += 1
        violated = sigma.subsets_of(evidence)
        if not violated:
            continue
        dcs_refined += len(violated)
        # Candidates are dominated ("line 8" of Algorithm 2) exactly by
        # DCs with a single predicate outside the evidence: a dominating
        # σ ⊆ v∪{p} with v ⊆ e satisfies σ∖e ⊆ {p}, and σ∖e = ∅ would
        # mean σ itself is violated (and removed).  One linear int-op pass
        # over the antichain collects all of them, bucketed by that
        # outside bit — cheaper than a trie traversal for this
        # whole-collection scan in CPython.
        blocker_buckets = {}
        outside_space = ~evidence
        for stored in sigma.mask_set:
            outside = stored & outside_space
            if outside and outside & (outside - 1) == 0:
                blocker_buckets.setdefault(
                    outside.bit_length() - 1, []
                ).append(stored & evidence)
        if blocking_sigma is not None:
            for stored in blocking_sigma.mask_set:
                outside = stored & outside_space
                if outside and outside & (outside - 1) == 0:
                    blocker_buckets.setdefault(
                        outside.bit_length() - 1, []
                    ).append(stored & evidence)
        for dc_mask in violated:
            sigma.remove(dc_mask)
        complement = full_mask & ~evidence
        for dc_mask in violated:
            for bit in iter_bits(complement):
                if not satisfiable_with(dc_mask, bit):
                    continue
                blockers = blocker_buckets.get(bit)
                if blockers is not None and any(
                    inside & ~dc_mask == 0 for inside in blockers
                ):
                    continue
                sigma.insert(dc_mask | (1 << bit))
                candidates_inserted += 1
    if probe is not None:
        probe.inc("enumeration.evidence_folded", evidences_folded)
        probe.inc("enumeration.dcs_refined", dcs_refined)
        probe.inc("enumeration.candidates_inserted", candidates_inserted)
    return sigma


def maximal_masks(masks: Iterable[int]) -> List[int]:
    """Deduplicate evidence masks and order them largest-first.

    In principle only set-maximal evidences can violate DCs.  For the
    evidences this engine produces, however, distinct masks are *never*
    comparable: every predicate group contributes exactly one of its
    satisfiable patterns (``{=,≤,≥}`` / ``{≠,<,≤}`` / ``{≠,>,≥}``, or
    ``{=}`` / ``{≠}``), and the patterns of a group are pairwise
    incomparable — so ``e₁ ⊆ e₂`` forces equality group by group.  Subset
    filtering would be an O(|E|²) no-op; this function therefore only
    dedupes and sorts by descending popcount (large evidences have small
    complements and spawn few refinements, which keeps the DC antichain
    small through most of an inversion pass).
    """
    return sorted(set(masks), key=lambda mask: -mask.bit_count())


def minimize_masks(masks: Iterable[int]) -> List[int]:
    """Keep only the set-minimal masks (drop supersets of other masks)."""
    ordered = sorted(masks, key=lambda mask: mask.bit_count())
    trie = SetTrie()
    minimal = []
    for mask in ordered:
        if trie.has_subset_of(mask):
            continue
        trie.insert(mask)
        minimal.append(mask)
    return minimal


def invert_evidence(
    space: PredicateSpace,
    evidence_masks: Iterable[int],
    seed_masks: Optional[Iterable[int]] = None,
) -> List[int]:
    """Enumerate all minimal, non-trivial DC masks valid for the evidence.

    With the default seed (the empty predicate set) this is the static EI
    algorithm.  A custom ``seed_masks`` antichain turns it into the re-grow
    pass used by DynEI's delete case; the result is minimized at the end
    because a seeded run may temporarily hold comparable sets.
    """
    if seed_masks is None:
        sigma = SetTrie([0])
    else:
        sigma = SetTrie(seed_masks)
    # Only maximal evidences can violate anything; maximal_masks also
    # returns them largest-first, which keeps the antichain small through
    # most of the pass (small complements spawn few refinements).
    refine_sigma(space, sigma, maximal_masks(evidence_masks))
    # The empty mask survives only when there is no evidence at all (fewer
    # than two alive tuples).  It is kept here — the antichain invariant of
    # the dynamic passes needs it — and filtered at the presentation layer.
    return sorted(minimize_masks(sigma.masks()))
