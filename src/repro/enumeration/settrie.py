"""Set-trie over predicate bitmasks for fast subset/superset queries.

DynEI's two hot operations (Algorithm 2, Section VI-C) are:

- line 4 — find the DCs *contained in* an evidence (a subset query), and
- line 8 — check whether a candidate *contains* any current DC (a subset
  existence query).

Both are answered by this trie, the structure of [2]: a path of ascending
bit indices per stored set, so a subset query only descends through
branches whose bit is present in the query mask.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.bitmaps.bitutils import iter_bits


class _Node:
    __slots__ = ("children", "terminal")

    def __init__(self):
        self.children = {}
        self.terminal = False


class SetTrie:
    """A dynamic collection of int bitmasks supporting subset retrieval."""

    def __init__(self, masks=None):
        self._root = _Node()
        self._size = 0
        # Mirror of the stored masks as a plain set: linear int-op passes
        # over it beat trie traversals for whole-collection scans in
        # CPython (see refine_sigma's blocker collection).
        self._mask_set = set()
        if masks is not None:
            for mask in masks:
                self.insert(mask)

    def __len__(self) -> int:
        return self._size

    def __contains__(self, mask: int) -> bool:
        node = self._root
        for bit in iter_bits(mask):
            node = node.children.get(bit)
            if node is None:
                return False
        return node.terminal

    def insert(self, mask: int) -> bool:
        """Insert ``mask``; return ``False`` when it was already present."""
        node = self._root
        for bit in iter_bits(mask):
            child = node.children.get(bit)
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if node.terminal:
            return False
        node.terminal = True
        self._size += 1
        self._mask_set.add(mask)
        return True

    def remove(self, mask: int) -> None:
        """Remove ``mask``; raises ``KeyError`` when absent."""
        path = []
        node = self._root
        for bit in iter_bits(mask):
            child = node.children.get(bit)
            if child is None:
                raise KeyError(f"mask {mask:#x} not in set-trie")
            path.append((node, bit))
            node = child
        if not node.terminal:
            raise KeyError(f"mask {mask:#x} not in set-trie")
        node.terminal = False
        self._size -= 1
        self._mask_set.discard(mask)
        # Prune now-dead branches bottom-up.
        for parent, bit in reversed(path):
            child = parent.children[bit]
            if child.terminal or child.children:
                break
            del parent.children[bit]

    # -- queries ------------------------------------------------------------

    def has_subset_of(self, mask: int) -> bool:
        """Whether any stored set is a subset of ``mask`` (including equal)."""
        stack = [self._root]
        push = stack.append
        pop = stack.pop
        while stack:
            node = pop()
            if node.terminal:
                return True
            for bit, child in node.children.items():
                if (mask >> bit) & 1:
                    push(child)
        return False

    def subsets_of(self, mask: int) -> List[int]:
        """All stored sets that are subsets of ``mask``."""
        found = []
        stack = [(self._root, 0)]
        push = stack.append
        pop = stack.pop
        while stack:
            node, acc = pop()
            if node.terminal:
                found.append(acc)
            for bit, child in node.children.items():
                if (mask >> bit) & 1:
                    push((child, acc | (1 << bit)))
        return found

    def blocked_extension_bits(self, base: int, extension_bits: int) -> int:
        """Bits ``p ∈ extension_bits`` for which some stored set is a
        subset of ``base | (1 << p)``.

        This answers all of DynEI's per-candidate minimality checks for
        one violated DC in a single traversal: a stored set blocks the
        extension ``p`` exactly when it is contained in the extended
        candidate, i.e. all its bits lie in ``base`` except at most one,
        which must be ``p``.  A stored subset of ``base`` itself would
        block *every* extension — it cannot occur while the trie holds an
        antichain that excluded ``base``, but is handled for safety.
        """
        blocked = 0
        base_bits = list(iter_bits(base))
        # Phase 0 walks only the nodes whose path uses `base` bits — a
        # subtrie bounded by the (small) DC size, not by |Σ|.  Because the
        # base is tiny, children are probed by dict lookup on the base
        # bits rather than by iterating every child.  Each extension-bit
        # child found there starts a phase-1 descent that again may only
        # use `base` bits; reaching any terminal proves the extension
        # dominated.  Already-proven bits are skipped, which collapses the
        # many subtrees that would re-derive the same bit.
        stack = [self._root]
        push = stack.append
        pop = stack.pop
        while stack:
            node = pop()
            if node.terminal:
                return extension_bits  # stored subset of base: blocks all
            children = node.children
            for bit in base_bits:
                child = children.get(bit)
                if child is not None:
                    push(child)
            # Extension candidates: probe whichever side is smaller.
            if len(children) <= extension_bits.bit_count():
                candidates = [
                    (bit, child)
                    for bit, child in children.items()
                    if (extension_bits >> bit) & 1
                ]
            else:
                candidates = [
                    (bit, children[bit])
                    for bit in iter_bits(extension_bits)
                    if bit in children
                ]
            for bit, child in candidates:
                bit_mask = 1 << bit
                if blocked & bit_mask:
                    continue
                inner = [child]
                inner_pop = inner.pop
                inner_push = inner.append
                while inner:
                    inner_node = inner_pop()
                    if inner_node.terminal:
                        blocked |= bit_mask
                        break
                    inner_children = inner_node.children
                    for inner_bit in base_bits:
                        inner_child = inner_children.get(inner_bit)
                        if inner_child is not None:
                            inner_push(inner_child)
        return blocked

    def almost_subsets_of(self, mask: int) -> List[tuple]:
        """All stored sets with exactly one bit outside ``mask``.

        Returns ``(outside_bit, inside_mask)`` pairs with
        ``σ = inside_mask | (1 << outside_bit)``.  This is DynEI's batched
        minimality oracle: a stored set blocks the candidate ``v | {p}``
        (``v ⊆ mask``) exactly when its outside bit is ``p`` and its
        inside mask is contained in ``v`` — sets fully inside ``mask`` are
        the *violated* ones and are handled separately.
        """
        found = []
        stack = [(self._root, -1, 0)]
        push = stack.append
        pop = stack.pop
        while stack:
            node, missed, acc = pop()
            if node.terminal and missed >= 0:
                found.append((missed, acc))
            for bit, child in node.children.items():
                if (mask >> bit) & 1:
                    push((child, missed, acc | (1 << bit)))
                elif missed < 0:
                    push((child, bit, acc))
        return found

    def supersets_of(self, mask: int) -> List[int]:
        """All stored sets that are supersets of ``mask``."""
        found = []
        self._collect_supersets(self._root, mask, 0, found)
        return found

    def _collect_supersets(self, node: _Node, pending: int, acc: int, found: list) -> None:
        if not pending:
            # All required bits matched; everything below qualifies.
            self._collect_all(node, acc, found)
            return
        lowest_required = (pending & -pending).bit_length() - 1
        for bit, child in node.children.items():
            if bit > lowest_required:
                continue
            if bit == lowest_required:
                self._collect_supersets(
                    child, pending & (pending - 1), acc | (1 << bit), found
                )
            else:
                self._collect_supersets(child, pending, acc | (1 << bit), found)

    def _collect_all(self, node: _Node, acc: int, found: list) -> None:
        if node.terminal:
            found.append(acc)
        for bit, child in node.children.items():
            self._collect_all(child, acc | (1 << bit), found)

    def __iter__(self) -> Iterator[int]:
        stack = [(self._root, 0)]
        while stack:
            node, acc = stack.pop()
            if node.terminal:
                yield acc
            for bit, child in node.children.items():
                stack.append((child, acc | (1 << bit)))

    def masks(self) -> List[int]:
        """All stored masks (unordered)."""
        return list(self._mask_set)

    @property
    def mask_set(self):
        """The stored masks as a set (do not mutate)."""
        return self._mask_set
