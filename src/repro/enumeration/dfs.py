"""FastDC-style depth-first DC search [4].

The original FastDC enumerates minimal covers of the evidence set with a
depth-first traversal of the predicate space.  This implementation uses
the equivalent hitting-set view: repeatedly pick an uncovered complement
edge and branch on its vertices, banning already-branched vertices so each
hitting set is produced exactly once (in the branch of its smallest vertex
within that edge).  Like FastDC — and unlike MMCS — minimality is not
guaranteed during the search, so the results are minimized afterwards.

Kept as a third, independently-derived enumerator for cross-validation and
for the baseline runtime comparisons.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.bitmaps.bitutils import iter_bits
from repro.enumeration.inversion import minimize_masks
from repro.enumeration.mmcs import complement_edges
from repro.predicates.space import PredicateSpace


def dfs_enumerate(space: PredicateSpace, evidence_masks: Iterable[int]) -> List[int]:
    """All minimal non-trivial DC masks, by depth-first cover search."""
    edges = complement_edges(space, evidence_masks)
    if not edges:
        return [0]
    satisfiable_with = space.satisfiable_with
    covers = []

    def recurse(current: int, banned: int, remaining: list) -> None:
        unhit = [edge for edge in remaining if not edge & current]
        if not unhit:
            covers.append(current)
            return
        branch_edge = min(unhit, key=lambda edge: (edge & ~banned).bit_count())
        candidates = branch_edge & ~banned
        if not candidates:
            return
        new_banned = banned
        for vertex in iter_bits(candidates):
            new_banned |= 1 << vertex
            if satisfiable_with(current, vertex):
                recurse(current | (1 << vertex), new_banned, unhit)

    recurse(0, 0, edges)
    return sorted(minimize_masks(covers))
