"""Figure 13 — runtime proportions of static vs dynamic discovery phases.

Paper: stacked runtimes of the static phases (Load, Evi, DCEnum) and the
dynamic ones (Evi(Dyn), DCEnum(Dyn)); (a) growing initial data with fixed
10 k inserts — the dynamic phases stay almost flat; (b) fixed 100 k
initial rows with growing inserts — the dynamic phases grow with the
batch.  Evidence building dominates both static and dynamic portions.
Reproduction: same two sweeps at scaled sizes.
"""

from _harness import (
    ResultTable,
    timed,
)

from repro.core.discoverer import DCDiscoverer
from repro.relational.loader import relation_from_rows
from repro.workloads import DATASETS

DATASET = "Dit"
STATIC_SIZES = (200, 400, 600, 800)
FIXED_INSERT = 80
FIXED_STATIC = 500
INSERT_SIZES = (25, 50, 100, 200)


def _run_breakdown(static_size, insert_size):
    rows = DATASETS[DATASET].rows(static_size + insert_size, seed=0)
    static_rows, delta_rows = rows[:static_size], rows[static_size:]

    relation, load_time = timed(
        lambda: relation_from_rows(DATASETS[DATASET].header, static_rows)
    )
    discoverer = DCDiscoverer(relation)
    fit = discoverer.fit()
    update = discoverer.insert(delta_rows)
    phases = {
        "Load": load_time,
        "Evi": fit.timings["evidence"],
        "DCEnum": fit.timings["enumeration"],
        "Evi(Dyn)": update.timings["evidence"],
        "DCEnum(Dyn)": update.timings["enumeration"],
    }
    return phases, update


def test_fig13a_growing_static(benchmark):
    table = ResultTable(
        f"Figure 13a — phase breakdown, growing static data, "
        f"fixed {FIXED_INSERT}-row inserts ({DATASET})",
        ["static rows", "Load", "Evi", "DCEnum", "Evi(Dyn)", "DCEnum(Dyn)"],
        "fig13a_breakdown_static.txt",
    )
    dynamic_times = []
    static_times = []
    for static_size in STATIC_SIZES:
        phases, update = _run_breakdown(static_size, FIXED_INSERT)
        table.add(
            static_size, phases["Load"], phases["Evi"], phases["DCEnum"],
            phases["Evi(Dyn)"], phases["DCEnum(Dyn)"],
        )
        table.add_phases(f"static={static_size}", phases)
        table.add_counters(f"static={static_size}", update)
        dynamic_times.append(phases["Evi(Dyn)"] + phases["DCEnum(Dyn)"])
        static_times.append(phases["Evi"] + phases["DCEnum"])
    # Shape: static cost grows much faster than dynamic cost.
    static_growth = static_times[-1] / max(static_times[0], 1e-9)
    dynamic_growth = dynamic_times[-1] / max(dynamic_times[0], 1e-9)
    table.finish(
        shape_notes=[
            f"static phases grow {static_growth:.1f}x across the sweep vs "
            f"{dynamic_growth:.1f}x for the dynamic phases "
            "(paper: dynamic solution scales very well with |r|)",
        ]
    )
    assert static_growth > dynamic_growth

    benchmark.pedantic(
        lambda: _run_breakdown(STATIC_SIZES[0], FIXED_INSERT)[0],
        rounds=1, iterations=1,
    )


def test_fig13b_growing_inserts(benchmark):
    table = ResultTable(
        f"Figure 13b — phase breakdown, fixed {FIXED_STATIC} static rows, "
        f"growing inserts ({DATASET})",
        ["insert rows", "Load", "Evi", "DCEnum", "Evi(Dyn)", "DCEnum(Dyn)"],
        "fig13b_breakdown_inserts.txt",
    )
    dynamic_times = []
    for insert_size in INSERT_SIZES:
        phases, update = _run_breakdown(FIXED_STATIC, insert_size)
        table.add(
            insert_size, phases["Load"], phases["Evi"], phases["DCEnum"],
            phases["Evi(Dyn)"], phases["DCEnum(Dyn)"],
        )
        table.add_phases(f"inserts={insert_size}", phases)
        table.add_counters(f"inserts={insert_size}", update)
        dynamic_times.append(phases["Evi(Dyn)"] + phases["DCEnum(Dyn)"])
    table.finish(
        shape_notes=[
            f"dynamic phase time grows "
            f"{dynamic_times[-1] / max(dynamic_times[0], 1e-9):.1f}x as the "
            "insert grows 8x (paper: dynamic performance tracks |Δr|)",
        ]
    )
    assert dynamic_times[-1] > dynamic_times[0]

    benchmark.pedantic(
        lambda: _run_breakdown(FIXED_STATIC, INSERT_SIZES[0])[0],
        rounds=1, iterations=1,
    )
