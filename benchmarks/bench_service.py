"""Serving-layer throughput — request coalescing vs per-request commits.

Not a paper figure: this benchmark tracks the repo's own concurrent
serving layer (``repro.service``, docs/service.md).  A closed loop of
concurrent clients drives single-row writes over real HTTP against an
in-process :class:`DCService`, once with the default coalescing window
and once with ``batch_window_ms=0``; the table records throughput,
commit-latency percentiles, the mean coalesced batch size, and how many
batch-update cycles (= WAL round-trips and snapshot publishes) the same
request stream cost under each policy.

The coalescing acceptance check lives here too: with concurrent clients
the mean batch size under the default window must exceed 1 — otherwise
the writer is degenerating to one cycle per request.
"""

import threading
import time

from _harness import ResultTable, timed

from repro.core.discoverer import DCDiscoverer
from repro.durability import DurableSession
from repro.relational.loader import relation_from_rows
from repro.service import DCService, ServiceClient, ServiceConfig
from repro.workloads import DATASETS

DATASET = "Tax"
STATIC_ROWS = 120
N_CLIENTS = 4
OPS_PER_CLIENT = 15
WINDOWS_MS = (5.0, 0.0)


def percentile(samples, q: float) -> float:
    """Nearest-rank percentile of a non-empty sample list."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(q / 100 * len(ordered)) - 1))
    return ordered[rank]


def run_closed_loop(tmp_path, window_ms: float) -> dict:
    """One measurement: N closed-loop clients, single-row writes each."""
    spec = DATASETS[DATASET]
    rows = spec.rows(STATIC_ROWS + N_CLIENTS * OPS_PER_CLIENT, seed=0)
    static, delta = rows[:STATIC_ROWS], rows[STATIC_ROWS:]
    discoverer = DCDiscoverer(relation_from_rows(spec.header, static))
    discoverer.fit()
    session = DurableSession.create(
        discoverer, tmp_path / f"session-w{window_ms}"
    )
    service = DCService(
        session, ServiceConfig(port=0, batch_window_ms=window_ms)
    )
    service.start()
    client = ServiceClient(base_url=service.url, timeout=60.0)
    client.wait_ready()

    latencies = []
    latency_lock = threading.Lock()

    def worker(worker_id: int):
        mine = delta[worker_id::N_CLIENTS]
        for row in mine[:OPS_PER_CLIENT]:
            started = time.perf_counter()
            outcome = client.insert([list(row)])
            elapsed = time.perf_counter() - started
            assert outcome["status"] == "committed"
            with latency_lock:
                latencies.append(elapsed)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(N_CLIENTS)
    ]
    _, wall = timed(
        lambda: [
            [thread.start() for thread in threads],
            [thread.join() for thread in threads],
        ]
    )
    metrics = service.instrumentation.metrics
    n_cycles = metrics.counter("service.batches_total")
    batch_mean = metrics.histograms["service.batch.size"].mean
    endpoint_latency = endpoint_quantiles(metrics)
    service.shutdown()
    n_requests = len(latencies)
    return {
        "window_ms": window_ms,
        "throughput": n_requests / wall,
        "p50": percentile(latencies, 50),
        "p95": percentile(latencies, 95),
        "p99": percentile(latencies, 99),
        "cycles": n_cycles,
        "batch_mean": batch_mean,
        "n_requests": n_requests,
        "endpoint_latency": endpoint_latency,
    }


def endpoint_quantiles(metrics) -> dict:
    """Server-side p50/p95/p99 per endpoint from the live histograms.

    These are the service's own ``service.endpoint_seconds.*`` latency
    histograms (exemplar-carrying, sub-second bucket bounds) — the same
    series ``/metrics`` exposes — so the recorded percentiles are what an
    operator's dashboards would show, not a client-side re-measurement.
    """
    quantiles = {}
    prefix = "service.endpoint_seconds."
    for name, histogram in sorted(metrics.histograms.items()):
        if not name.startswith(prefix) or not histogram.count:
            continue
        quantiles[name[len(prefix):]] = {
            "count": histogram.count,
            "p50_ms": round(histogram.quantile(0.50) * 1000, 3),
            "p95_ms": round(histogram.quantile(0.95) * 1000, 3),
            "p99_ms": round(histogram.quantile(0.99) * 1000, 3),
        }
    return quantiles


def test_service_throughput(benchmark, tmp_path):
    table = ResultTable(
        "Serving layer — closed-loop write throughput, coalesced vs not",
        [
            "window_ms",
            "clients",
            "req/s",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "cycles",
            "batch_mean",
        ],
        "service_throughput.txt",
    )
    measurements = {}
    for window_ms in WINDOWS_MS:
        result = run_closed_loop(tmp_path, window_ms)
        measurements[window_ms] = result
        table.add(
            window_ms,
            N_CLIENTS,
            round(result["throughput"], 1),
            round(result["p50"] * 1000, 2),
            round(result["p95"] * 1000, 2),
            round(result["p99"] * 1000, 2),
            result["cycles"],
            round(result["batch_mean"], 2),
        )

    table.extras["endpoint_latency"] = {
        str(window_ms): measurements[window_ms]["endpoint_latency"]
        for window_ms in WINDOWS_MS
    }

    coalesced = measurements[5.0]
    uncoalesced = measurements[0.0]
    # The acceptance criterion: coalescing is observable under load.
    assert coalesced["batch_mean"] > 1.0, (
        "concurrent closed-loop clients must coalesce into multi-request "
        f"batches, got mean {coalesced['batch_mean']:.2f}"
    )
    assert coalesced["cycles"] < coalesced["n_requests"]

    table.finish(
        shape_notes=[
            f"coalesced {coalesced['n_requests']} requests into "
            f"{coalesced['cycles']} cycles (mean batch "
            f"{coalesced['batch_mean']:.2f}) vs {uncoalesced['cycles']} "
            "cycles without a window",
            "single-row closed-loop writes; each cycle = one WAL "
            "round-trip + one snapshot publish regardless of batch size",
        ]
    )

    benchmark.pedantic(
        lambda: run_closed_loop(tmp_path / "bench", 5.0),
        rounds=1,
        iterations=1,
    )
