"""Replication — WAL-shipping replay cost and fleet serving throughput.

Not a paper figure: this benchmark tracks the repo's own replicated
serving fleet (``repro.replication``, docs/replication.md).  Two parts:

1. **Deterministic replay** (gated): a scripted maintenance workload on
   a primary session is tailed by one :class:`DirectorySource` follower,
   including a checkpoint-reset catch-up mid-stream.  The frame and
   catch-up counts plus the follower's durability work counters are a
   pure function of the workload, so the CI bench gate pins them; the
   follower's final state must be byte-identical to the primary's.
2. **Fleet throughput** (logged, not gated): a closed loop of concurrent
   clients drives single-row writes over real HTTP against a
   ``--replicate-listen`` primary while 0, 1, or 2 HTTP followers tail
   it.  The table records write throughput per topology, the follower
   lag distribution sampled during the burst (in seq units), and how
   long the fleet takes to converge after the last write — the cost of
   read scale-out, measured.
"""

import threading
import time

from _harness import (
    ResultTable,
    clone_discoverer,
    fitted_state_payload,
    insert_workload,
    timed,
)

from repro.core.state_io import state_to_bytes
from repro.durability import DurableSession
from repro.replication import (
    DirectorySource,
    FollowerService,
    FollowerSession,
    HTTPSource,
)
from repro.service import DCService, ServiceClient, ServiceConfig

DATASET = "Tax"
N_CLIENTS = 3
OPS_PER_CLIENT = 10
TOPOLOGIES = (0, 1, 2)
LAG_SAMPLE_S = 0.005
CONVERGE_TIMEOUT_S = 30.0


def run_directory_replay(tmp_path) -> dict:
    """Scripted primary workload tailed by one directory follower."""
    static_rows, delta_rows = insert_workload(DATASET, 0.4)
    payload = fitted_state_payload(DATASET, static_rows)
    session = DurableSession.create(
        clone_discoverer(payload),
        tmp_path / "replay-primary",
        checkpoint_every=100,
    )
    follower = FollowerSession.bootstrap(
        tmp_path / "replay-follower",
        DirectorySource(tmp_path / "replay-primary"),
    )
    batches = [delta_rows[i::7] for i in range(7)]
    _, wall = timed(lambda: _replay(session, follower, batches))
    identical = state_to_bytes(follower.session.discoverer) == state_to_bytes(
        session.discoverer
    )
    counters = dict(
        follower.session.discoverer.instrumentation.metrics.counters
    )
    result = {
        "wall_s": wall,
        "frames_applied": follower.frames_applied_total,
        "catchups": follower.catchups_total,
        "wal_records": counters.get("durability.wal_records", 0),
        "identical": identical,
    }
    follower.close()
    session.close()
    return result


def _replay(session, follower, batches) -> None:
    # Three tailed batches, then a checkpoint reset the follower sleeps
    # through (forcing one checkpoint catch-up), then two tailed batches.
    for batch in batches[:3]:
        session.insert(batch)
        follower.poll()
    session.insert(batches[3])
    session.insert(batches[4])
    session.checkpoint()  # resets the primary WAL: frames 4-5 are gone
    session.insert(batches[5])
    session.insert(batches[6])
    while follower.poll() or follower.lag_seq:
        pass


def run_fleet(tmp_path, n_followers: int) -> dict:
    """One closed-loop write burst against a primary with N followers."""
    static_rows, delta_rows = insert_workload(DATASET, 0.3, seed=1)
    payload = fitted_state_payload(DATASET, static_rows)
    session = DurableSession.create(
        clone_discoverer(payload),
        tmp_path / f"primary-{n_followers}f",
        checkpoint_every=1000,
    )
    primary = DCService(
        session,
        ServiceConfig(port=0, batch_window_ms=2.0, replicate_listen=True),
    )
    primary.start()
    client = ServiceClient(base_url=primary.url, timeout=60.0)
    client.wait_ready()

    followers = []
    for index in range(n_followers):
        follower = FollowerSession.bootstrap(
            tmp_path / f"follower-{n_followers}f-{index}",
            HTTPSource(primary.url),
            primary_url=primary.url,
        )
        service = FollowerService(
            follower,
            ServiceConfig(
                port=0, batch_window_ms=0.0, follow_poll_wait_s=0.05
            ),
            primary_url=primary.url,
        )
        service.start()
        ServiceClient(base_url=service.url).wait_ready()
        followers.append(service)

    lag_samples = []
    stop_sampling = threading.Event()

    def sampler():
        while not stop_sampling.is_set():
            lag_samples.extend(
                service.follower.lag_seq for service in followers
            )
            time.sleep(LAG_SAMPLE_S)

    sampler_thread = threading.Thread(target=sampler, daemon=True)
    if followers:
        sampler_thread.start()

    latencies = []
    latency_lock = threading.Lock()

    def worker(worker_id: int):
        mine = delta_rows[worker_id :: N_CLIENTS]
        for row in mine[:OPS_PER_CLIENT]:
            started = time.perf_counter()
            outcome = client.insert([list(row)])
            elapsed = time.perf_counter() - started
            assert outcome["status"] == "committed"
            with latency_lock:
                latencies.append(elapsed)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(N_CLIENTS)
    ]
    _, wall = timed(
        lambda: [
            [thread.start() for thread in threads],
            [thread.join() for thread in threads],
        ]
    )

    final_seq = primary.snapshot.seq
    converge_started = time.perf_counter()
    deadline = converge_started + CONVERGE_TIMEOUT_S
    for service in followers:
        while (
            service.follower.last_applied_seq < final_seq
            and time.perf_counter() < deadline
        ):
            time.sleep(0.002)
        assert service.follower.last_applied_seq >= final_seq, (
            f"follower failed to converge to seq {final_seq} within "
            f"{CONVERGE_TIMEOUT_S}s: {service.follower!r}"
        )
    converge_s = time.perf_counter() - converge_started
    stop_sampling.set()
    if followers:
        sampler_thread.join()

    # Every replica serves the identical constraint set at the end.
    reference = client.dcs(min_seq=final_seq)["dcs"]
    for service in followers:
        replica_view = ServiceClient(base_url=service.url).dcs(
            min_seq=final_seq
        )
        assert replica_view["dcs"] == reference

    for service in followers:
        service.shutdown()
    primary.shutdown()

    n_requests = len(latencies)
    ordered = sorted(latencies)
    p95 = ordered[max(0, round(0.95 * len(ordered)) - 1)] if ordered else 0.0
    return {
        "followers": n_followers,
        "throughput": n_requests / wall if wall else 0.0,
        "p95": p95,
        "lag_max": max(lag_samples, default=0),
        "lag_mean": (
            sum(lag_samples) / len(lag_samples) if lag_samples else 0.0
        ),
        "lag_samples": len(lag_samples),
        "converge_s": converge_s if followers else 0.0,
        "final_seq": final_seq,
    }


def test_replication(benchmark, tmp_path):
    table = ResultTable(
        "Replication — WAL-shipping replay and fleet write throughput",
        [
            "scenario",
            "followers",
            "req/s",
            "p95_ms",
            "lag_max",
            "lag_mean",
            "converge_ms",
        ],
        "replication.txt",
    )

    replay = run_directory_replay(tmp_path)
    assert replay["identical"], (
        "directory-replay follower diverged from its primary"
    )
    assert replay["catchups"] == 1, replay
    # Frames 1-3 and 6-7 are tailed; 4-5 arrive via the checkpoint.
    assert replay["frames_applied"] == 5, replay
    table.add(
        "wal-replay",
        1,
        "-",
        "-",
        0,
        0.0,
        round(replay["wall_s"] * 1000, 1),
    )
    # Deterministic work counters for the CI bench gate: how many frames
    # the follower applied, how it caught up, and what its own WAL saw.
    table.counters["directory-replay"] = {
        "replication.frames_applied": replay["frames_applied"],
        "replication.catchups": replay["catchups"],
        "durability.wal_records": replay["wal_records"],
    }

    measurements = {}
    for n_followers in TOPOLOGIES:
        result = run_fleet(tmp_path, n_followers)
        measurements[n_followers] = result
        table.add(
            "http-fleet",
            n_followers,
            round(result["throughput"], 1),
            round(result["p95"] * 1000, 2),
            result["lag_max"],
            round(result["lag_mean"], 2),
            round(result["converge_s"] * 1000, 1),
        )

    table.extras["fleet"] = {
        str(n): {
            key: (round(value, 6) if isinstance(value, float) else value)
            for key, value in measurements[n].items()
        }
        for n in TOPOLOGIES
    }

    table.finish(
        shape_notes=[
            f"replay: {replay['frames_applied']} frames tailed + "
            f"{replay['catchups']} checkpoint catch-up, follower "
            "byte-identical to primary",
            "fleet: closed-loop single-row writes on the primary; lag "
            "sampled in seq units on each follower during the burst; "
            "convergence = newest commit visible on every replica",
            "all nodes are co-located in one process, so each follower's "
            "apply pipeline shares the GIL with the primary — the "
            "throughput drop per follower is that co-location cost, not "
            "a protocol cost",
        ]
    )

    benchmark.pedantic(
        lambda: run_fleet(tmp_path / "bench", 1),
        rounds=1,
        iterations=1,
    )
