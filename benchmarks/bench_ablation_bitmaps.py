"""Ablation — bitmap backend: raw-int bitsets vs roaring bitmaps.

DESIGN.md calls out the rid-set representation as a design choice: the
paper uses compressed (roaring-style) bitmaps in Java [13]; in CPython the
arbitrary-precision ``int`` executes the same logical operations in C.
This ablation measures both backends on the operation mix the evidence
engine actually performs (intersections/differences between index entries
and context rid sets) plus a sparse/clustered membership workload where
roaring's chunking pays off in *memory*, not time.
"""

import random
import tracemalloc

from _harness import ResultTable, timed

from repro.bitmaps import IntBitset, RoaringBitmap

N_ROWS = 20_000
N_OPS = 400


def _operands(backend, rng):
    """Index-entry-like operands: clustered runs plus random scatter."""
    operands = []
    for _ in range(40):
        start = rng.randrange(N_ROWS - 600)
        run = set(range(start, start + rng.randrange(50, 500)))
        scatter = {rng.randrange(N_ROWS) for _ in range(200)}
        operands.append(backend.from_iterable(run | scatter))
    return operands


def _workload(backend, seed=0):
    rng = random.Random(seed)
    operands = _operands(backend, rng)
    acc = backend.full(N_ROWS)
    checksum = 0
    for i in range(N_OPS):
        left = operands[i % len(operands)]
        right = operands[(i * 7 + 3) % len(operands)]
        intersection = left & right
        difference = acc - intersection
        union = left | right
        checksum ^= len(intersection) ^ len(difference) ^ len(union)
    return checksum


def _peak_memory(backend):
    rng = random.Random(1)
    tracemalloc.start()
    try:
        keep = _operands(backend, rng) + [backend.full(N_ROWS)]
        _, peak = tracemalloc.get_traced_memory()
        del keep
        return peak
    finally:
        tracemalloc.stop()


def test_ablation_bitmap_backends(benchmark):
    table = ResultTable(
        "Ablation — bitmap backends on the evidence-engine op mix",
        ["backend", "ops time (s)", "peak MiB (40 index entries)"],
        "ablation_bitmaps.txt",
    )
    results = {}
    for backend in (IntBitset, RoaringBitmap):
        checksum, elapsed = timed(lambda b=backend: _workload(b))
        peak = _peak_memory(backend)
        results[backend.__name__] = (elapsed, peak)
        table.add(backend.__name__, elapsed, round(peak / 2**20, 3))

    int_time = results["IntBitset"][0]
    roaring_time = results["RoaringBitmap"][0]
    table.finish(
        shape_notes=[
            f"IntBitset is {roaring_time / int_time:.1f}x faster on the op "
            "mix in CPython — the reason it is the default backend; the "
            "paper's roaring choice targets JVM memory behaviour",
        ]
    )
    # Both backends must at least complete and agree on semantics
    # (agreement is covered by the property tests).
    assert int_time > 0 and roaring_time > 0

    benchmark.pedantic(lambda: _workload(IntBitset), rounds=1, iterations=1)
