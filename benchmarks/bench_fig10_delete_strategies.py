"""Figure 10 — evidence-set maintenance on deletes: index vs recompute.

Paper: growing delete batches; the per-tuple evidence-index strategy
slightly outperforms full recomputation, at the cost of a slight static
build-time overhead (e.g. NCVoter static 11.9 s → 12.9 s, dynamic
4.7 s → 3.4 s).  Reproduction: evidence-phase time only, both strategies,
growing batches; the build-overhead note is reproduced alongside.
Expected shape: index ≤ recompute on most points; a small positive static
overhead for maintaining the index.
"""

from _harness import (
    ResultTable,
    SWEEP_DATASETS,
    clone_discoverer,
    fitted_state_payload,
    rows_for,
    timed,
)

from repro.core.discoverer import DCDiscoverer
from repro.relational.loader import relation_from_rows
from repro.workloads import DATASETS, pick_delete_rids

DELETE_RATIOS = (0.05, 0.1, 0.2, 0.3)


def _delete_time(payload, strategy, ratio, seed=3):
    discoverer = clone_discoverer(payload)
    discoverer.delete_strategy = strategy
    doomed = pick_delete_rids(discoverer.relation, ratio, seed=seed)
    result = discoverer.delete(doomed)
    return result.timings["evidence"], len(doomed)


def test_fig10_delete_strategies(benchmark):
    table = ResultTable(
        "Figure 10 — delete evidence maintenance: index vs recompute (s)",
        ["dataset", "|Δr|", "recompute", "index", "speedup"],
        "fig10_delete_strategies.txt",
    )
    speedups = []
    for name in SWEEP_DATASETS:
        static_rows = DATASETS[name].rows(rows_for(name), seed=0)
        payload = fitted_state_payload(
            name, static_rows, maintain_tuple_index=True
        )
        for ratio in DELETE_RATIOS:
            recompute_time, batch = _delete_time(payload, "recompute", ratio)
            index_time, _ = _delete_time(payload, "index", ratio)
            speedup = recompute_time / index_time if index_time else 1.0
            speedups.append(speedup)
            table.add(name, batch, recompute_time, index_time, speedup)

    # Static build overhead of maintaining the index (paper: slight).
    overhead_rows = DATASETS["NCVoter"].rows(rows_for("NCVoter"), seed=0)

    def fit_with(maintain):
        relation = relation_from_rows(DATASETS["NCVoter"].header, overhead_rows)
        discoverer = DCDiscoverer(
            relation,
            maintain_tuple_index=maintain,
            delete_strategy="index" if maintain else "recompute",
        )
        return discoverer.fit().timings["evidence"]

    without_index, _ = timed(lambda: fit_with(False))
    with_index, _ = timed(lambda: fit_with(True))

    mean_speedup = sum(speedups) / len(speedups)
    wins = sum(s >= 1.0 for s in speedups)
    table.finish(
        shape_notes=[
            f"index strategy faster on {wins}/{len(speedups)} points, "
            f"mean speedup {mean_speedup:.2f}x (paper: slight win)",
            f"NCVoter static evidence build: {without_index:.2f}s without "
            f"index vs {with_index:.2f}s maintaining it "
            "(paper: slight increase)",
        ]
    )
    assert mean_speedup > 0.95, "index strategy should not lose on average"

    static_rows = DATASETS["Dit"].rows(rows_for("Dit"), seed=0)
    payload = fitted_state_payload("Dit", static_rows, maintain_tuple_index=True)
    benchmark.pedantic(
        lambda: _delete_time(payload, "index", 0.1),
        rounds=1, iterations=1,
    )
