"""Ablation — multi-column pre-sort of the table (Section V-D).

The paper sorts the table on its numerical columns before indexing "to
enhance bitmap compression and the performance of the set operations".
With raw-int bitsets the benefit comes from rid locality (contiguous runs
in index entries make the big-int words denser).  This ablation measures
the static evidence build with and without the pre-sort.
"""

from _harness import ResultTable, rows_for, timed

from repro.evidence import build_evidence_state
from repro.predicates import build_predicate_space
from repro.relational import sort_by_numeric_columns
from repro.workloads import generate_dataset

DATASETS_SORT = ("Dit", "NCVoter", "Claim")


def test_ablation_table_sort(benchmark):
    table = ResultTable(
        "Ablation — numeric pre-sort before evidence building (s)",
        ["dataset", "unsorted", "sorted", "speedup"],
        "ablation_sort.txt",
    )
    speedups = []
    for name in DATASETS_SORT:
        relation = generate_dataset(name, rows_for(name))
        space = build_predicate_space(relation)

        _, unsorted_time = timed(lambda: build_evidence_state(relation, space))

        sorted_relation = sort_by_numeric_columns(relation)
        sorted_space = build_predicate_space(sorted_relation)
        _, sorted_time = timed(
            lambda: build_evidence_state(sorted_relation, sorted_space)
        )
        speedup = unsorted_time / sorted_time if sorted_time else 1.0
        speedups.append(speedup)
        table.add(name, unsorted_time, sorted_time, speedup)

    mean = sum(speedups) / len(speedups)
    table.finish(
        shape_notes=[
            f"mean speedup {mean:.2f}x from the pre-sort "
            "(paper applies it unconditionally; with int bitsets the "
            "effect is modest)",
        ]
    )
    # The sort must never be strongly harmful.
    assert mean > 0.7

    relation = generate_dataset("Dit", rows_for("Dit"))
    space = build_predicate_space(relation)
    benchmark.pedantic(
        lambda: build_evidence_state(relation, space), rounds=1, iterations=1
    )
