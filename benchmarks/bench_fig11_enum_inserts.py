"""Figure 11 — dynamic DC enumeration on inserts: DynEI vs DynHS.

Paper: enumeration-phase runtime only; (a) growing insert batches on
20 k-row static data, (b) fixed 10 % inserts with growing column counts.
DynEI is much faster throughout — DynHS must touch every DC on every new
evidence to keep its criticality lists exact, and the gap widens with the
predicate count.  Reproduction: same two sweeps at scaled sizes; expected
shape — DynEI below DynHS everywhere, widening with columns.
"""

from _harness import (
    ResultTable,
    geometric_speedup,
    rows_for,
    timed,
)

from repro.enumeration import DynHS, SetTrie
from repro.enumeration.inversion import maximal_masks, refine_sigma
from repro.enumeration.mmcs import mmcs_enumerate
from repro.evidence import (
    apply_insert_evidence,
    build_evidence_state,
    incremental_evidence_for_insert,
)
from repro.predicates import build_predicate_space
from repro.relational.loader import relation_from_rows
from repro.workloads import DATASETS, split_for_insert

SIZE_DATASETS = ("Airport", "Claim", "Dit", "Tax")
RATIOS = (0.05, 0.1, 0.2, 0.3)
COLUMN_DATASET = "FD"
COLUMN_COUNTS = (5, 8, 11, 14)


def _prepare_insert(name, ratio, column_names=None, total_rows=None):
    """Build (space, sigma, new_masks, all_evidence) for one insert batch,
    with the evidence phase done outside any timed region."""
    rows = DATASETS[name].rows(total_rows or rows_for(name), seed=0)
    workload = split_for_insert(rows, ratio=ratio, retain=0.7, seed=0)
    relation = relation_from_rows(DATASETS[name].header, list(workload.static_rows))
    space = build_predicate_space(relation, column_names=column_names)
    state = build_evidence_state(relation, space)
    sigma = mmcs_enumerate(space, list(state.evidence))
    previous_evidence = list(state.evidence)
    new_rids = relation.insert(list(workload.delta_rows))
    state.indexes.add_rows(new_rids)
    delta = incremental_evidence_for_insert(relation, state, new_rids)
    new_masks = apply_insert_evidence(state, delta)
    return space, sigma, previous_evidence, new_masks


def _measure_pair(space, sigma, previous_evidence, new_masks):
    trie = SetTrie(sigma)  # DynEI state, prepared outside the timed region
    _, t_dynei = timed(
        lambda: refine_sigma(space, trie, maximal_masks(new_masks))
    )
    enumerator = DynHS(space, previous_evidence)  # crit bootstrap untimed
    _, t_dynhs = timed(lambda: enumerator.insert_evidence(new_masks))
    assert sorted(trie.masks()) == enumerator.dc_masks, "enumerators disagree"
    return t_dynei, t_dynhs


def test_fig11a_insert_size_sweep(benchmark):
    table = ResultTable(
        "Figure 11a — enumeration on inserts, growing batches (s)",
        ["dataset", "ratio", "new evidences", "DynEI", "DynHS"],
        "fig11a_enum_inserts_size.txt",
    )
    pairs = []
    for name in SIZE_DATASETS:
        for ratio in RATIOS:
            space, sigma, previous, new_masks = _prepare_insert(name, ratio)
            t_dynei, t_dynhs = _measure_pair(space, sigma, previous, new_masks)
            # Sub-resolution cells (both under 20 ms) are timer noise and
            # excluded from the aggregate, as in the paper's log plots.
            if max(t_dynei, t_dynhs) >= 0.02:
                pairs.append((t_dynhs, t_dynei))
            table.add(name, ratio, len(new_masks), t_dynei, t_dynhs)
    speedup = geometric_speedup(pairs)
    table.finish(
        shape_notes=[
            f"DynEI over DynHS geometric-mean speedup {speedup:.1f}x on "
            "inserts (paper: DynEI faster, especially with many DCs; in "
            "this substrate the gap concentrates on the DC-rich datasets "
            "— see Tax — and on deletes, Figure 12)",
        ]
    )
    assert speedup > 0.6, "DynEI must stay competitive on inserts"

    space, sigma, previous, new_masks = _prepare_insert(SIZE_DATASETS[0], 0.1)
    benchmark.pedantic(
        lambda: _measure_pair(space, sigma, previous, new_masks),
        rounds=1, iterations=1,
    )


def test_fig11b_column_sweep(benchmark):
    table = ResultTable(
        "Figure 11b — enumeration on inserts (10%), growing columns (s)",
        ["dataset", "columns", "predicates", "DynEI", "DynHS"],
        "fig11b_enum_inserts_columns.txt",
    )
    header = DATASETS[COLUMN_DATASET].header
    ratio_series = []
    for n_columns in COLUMN_COUNTS:
        column_names = list(header[:n_columns])
        space, sigma, previous, new_masks = _prepare_insert(
            COLUMN_DATASET, 0.1, column_names=column_names
        )
        t_dynei, t_dynhs = _measure_pair(space, sigma, previous, new_masks)
        table.add(COLUMN_DATASET, n_columns, space.n_bits, t_dynei, t_dynhs)
        ratio_series.append(t_dynhs / t_dynei if t_dynei > 0 else 1.0)
    widening = ratio_series[-1] >= ratio_series[0]
    table.finish(
        shape_notes=[
            f"DynHS/DynEI ratio from {ratio_series[0]:.1f}x at "
            f"{COLUMN_COUNTS[0]} columns to {ratio_series[-1]:.1f}x at "
            f"{COLUMN_COUNTS[-1]} (paper: exponential growth hits DynHS harder)",
        ]
    )
    assert widening or ratio_series[-1] > 0.8

    benchmark.pedantic(
        lambda: _prepare_insert(
            COLUMN_DATASET, 0.1, column_names=list(header[:5])
        ),
        rounds=1, iterations=1,
    )
