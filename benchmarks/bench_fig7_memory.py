"""Figure 7 — memory consumption of 3DC vs IncDC.

Paper: minimum JVM heap needed per algorithm (λ = 0.1 inserts); IncDC
required up to 8× more memory because its index scheme covers every DC in
Σ.  Reproduction: tracemalloc peak bytes of the maintenance structures for
the same workload — same quantity (peak working set of the algorithm's
structures) without JVM noise.  Expected shape: IncDC's peak exceeds
3DC's on every dataset, by a growing factor on DC-rich datasets.
"""

import tracemalloc

from _harness import (
    ResultTable,
    SWEEP_DATASETS,
    clone_discoverer,
    fitted_state_payload,
    insert_workload,
)

from repro.baselines import IncDC

DATASETS_FIG7 = tuple(SWEEP_DATASETS) + ("Hospital", "Inspection")


def _peak_bytes(callable_):
    tracemalloc.start()
    try:
        callable_()
        _, peak = tracemalloc.get_traced_memory()
        return peak
    finally:
        tracemalloc.stop()


def test_fig7_memory(benchmark):
    table = ResultTable(
        "Figure 7 — peak maintenance memory (MiB), λ=0.1 inserts",
        ["dataset", "3DC", "IncDC", "ratio"],
        "fig7_memory.txt",
    )
    ratios = []
    for name in DATASETS_FIG7:
        static_rows, delta_rows = insert_workload(name, 0.1)
        payload = fitted_state_payload(name, static_rows)

        def run_3dc():
            discoverer = clone_discoverer(payload)
            discoverer.insert(delta_rows)

        def run_incdc():
            base = clone_discoverer(payload)
            incdc = IncDC(base.relation, base.space, base.dc_masks)
            incdc.insert(delta_rows)

        peak_3dc = _peak_bytes(run_3dc)
        peak_incdc = _peak_bytes(run_incdc)
        ratio = peak_incdc / peak_3dc if peak_3dc else float("inf")
        ratios.append(ratio)
        table.add(
            name,
            round(peak_3dc / 2**20, 2),
            round(peak_incdc / 2**20, 2),
            round(ratio, 2),
        )

    higher = sum(r > 1.0 for r in ratios)
    table.finish(
        shape_notes=[
            f"IncDC peak exceeds 3DC on {higher}/{len(ratios)} datasets "
            "(paper: all, up to 8x)",
        ]
    )
    assert higher >= len(ratios) - 1

    static_rows, delta_rows = insert_workload("Tax", 0.1)
    payload = fitted_state_payload("Tax", static_rows)
    benchmark.pedantic(
        lambda: _peak_bytes(lambda: clone_discoverer(payload).insert(delta_rows)),
        rounds=1, iterations=1,
    )
