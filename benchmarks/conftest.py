"""Benchmark-suite configuration.

Runs with ``pytest benchmarks/ --benchmark-only``.  Each module reproduces
one table or figure; the detailed paper-style tables are printed and
persisted under ``benchmarks/results/``.
"""

import sys
from pathlib import Path

# Make `_harness` importable regardless of how pytest was invoked.
sys.path.insert(0, str(Path(__file__).parent))
