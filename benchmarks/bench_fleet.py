"""Fleet control plane — fencing determinism and failover MTTR.

Not a paper figure: this benchmark tracks the repo's own fleet control
plane (``repro.fleet``, docs/fleet.md).  Two parts:

1. **Deterministic fence replay** (gated): a scripted split-brain
   incident over :class:`DirectorySource` replication — promote a
   follower to a higher epoch, let the deposed primary keep writing as
   a zombie, point a downstream of the new timeline at the zombie, fence
   the zombie, and rejoin it as a follower.  The fenced-poll, rejected
   write, and discarded-tail counts are a pure function of the script,
   so the CI bench gate pins them; both survivors must end byte-identical
   to the new primary.
2. **Live failover MTTR** (logged, not gated): a real HTTP fleet — one
   ``--replicate-listen`` primary, two followers, a
   :class:`FleetMonitor` coordinator, and a :class:`FleetClient` writing
   through the coordinator.  The primary is killed mid-traffic and the
   table records the detect → fence → drain → promote → repoint
   breakdown from the monitor's failover record plus the client-observed
   MTTR: kill to first acknowledged write on the new primary.
"""

import threading
import time

from _harness import (
    ResultTable,
    clone_discoverer,
    fitted_state_payload,
    insert_workload,
    timed,
)

from repro.core.state_io import state_to_bytes
from repro.durability import DurableSession, SessionFencedError
from repro.fleet import FleetClient, FleetMonitor, HTTPNode
from repro.fleet.monitor import CoordinatorServer
from repro.replication import (
    DirectorySource,
    FollowerService,
    FollowerSession,
    HTTPSource,
    ReplicationError,
)
from repro.service import DCService, ServiceClient, ServiceConfig

DATASET = "Tax"
#: Polls a downstream aims at the zombie feed — each must be rejected.
FENCED_POLLS = 3
SUSPICION_S = 0.2
MONITOR_INTERVAL_S = 0.05
FAILOVER_TIMEOUT_S = 60.0


def _drain(follower) -> None:
    while follower.poll() or follower.lag_seq:
        pass


def run_fence_replay(tmp_path) -> dict:
    """Scripted split-brain: promote, zombie writes, fence, rejoin."""
    static_rows, delta_rows = insert_workload(DATASET, 0.4)
    payload = fitted_state_payload(DATASET, static_rows)
    primary_dir = tmp_path / "fence-primary"
    session = DurableSession.create(
        clone_discoverer(payload), primary_dir, checkpoint_every=100
    )
    follower = FollowerSession.bootstrap(
        tmp_path / "fence-follower", DirectorySource(primary_dir)
    )
    batches = [delta_rows[i::6] for i in range(6)]
    for batch in batches[:3]:
        session.insert(batch)
    _drain(follower)

    # Failover: the follower takes over at the next epoch; the deposed
    # primary — fence not yet delivered — keeps writing as a zombie.
    promoted = follower.promote()
    session.insert(batches[3])
    session.insert(batches[4])

    # A downstream of the *new* timeline repointed at the zombie must
    # reject the feed outright: it proves only the dead epoch.
    downstream = FollowerSession.bootstrap(
        tmp_path / "fence-downstream",
        DirectorySource(tmp_path / "fence-follower"),
    )
    _drain(downstream)
    fenced_polls = 0
    downstream.source = DirectorySource(primary_dir)
    for _ in range(FENCED_POLLS):
        try:
            downstream.poll()
        except ReplicationError:
            fenced_polls += 1
    frames_fenced = downstream.frames_fenced_total
    identical_downstream = state_to_bytes(
        downstream.session.discoverer
    ) == state_to_bytes(promoted.discoverer)
    downstream.close()

    # The fence lands on the zombie: its timeline is dead for writes.
    session.fence(promoted.epoch)
    fenced_writes = 0
    try:
        session.insert(batches[5])
    except SessionFencedError:
        fenced_writes += 1
    session.close()

    # The new primary moves on, then the zombie rejoins as a follower:
    # rebase onto the live checkpoint, discard the unreplicated tail.
    promoted.insert(batches[5])
    promoted.checkpoint()
    rejoined, rejoin_wall = timed(
        lambda: FollowerSession.bootstrap(
            primary_dir, DirectorySource(tmp_path / "fence-follower")
        )
    )
    tail_discarded = rejoined.tail_discarded_total
    _drain(rejoined)
    identical_rejoined = state_to_bytes(
        rejoined.session.discoverer
    ) == state_to_bytes(promoted.discoverer)
    result = {
        "epoch": promoted.epoch,
        "fenced_polls": fenced_polls,
        "frames_fenced": frames_fenced,
        "fenced_writes": fenced_writes,
        "tail_discarded": tail_discarded,
        "frames_applied": rejoined.frames_applied_total,
        "rejoin_wall_s": rejoin_wall,
        "identical": identical_downstream and identical_rejoined,
    }
    rejoined.close()
    promoted.close()
    return result


def run_live_failover(tmp_path) -> dict:
    """Kill a live HTTP primary under a monitor; measure the MTTR."""
    static_rows, delta_rows = insert_workload(DATASET, 0.3, seed=1)
    payload = fitted_state_payload(DATASET, static_rows)
    session = DurableSession.create(
        clone_discoverer(payload),
        tmp_path / "live-primary",
        checkpoint_every=1000,
    )
    primary = DCService(
        session,
        ServiceConfig(port=0, batch_window_ms=0.0, replicate_listen=True),
    )
    primary.start()
    ServiceClient(base_url=primary.url).wait_ready()

    followers = []
    for index in range(2):
        follower = FollowerSession.bootstrap(
            tmp_path / f"live-follower{index}",
            HTTPSource(primary.url),
            primary_url=primary.url,
        )
        service = FollowerService(
            follower,
            ServiceConfig(
                port=0, batch_window_ms=0.0, follow_poll_wait_s=0.05
            ),
            primary_url=primary.url,
        )
        service.start()
        ServiceClient(base_url=service.url).wait_ready()
        followers.append(service)

    monitor = FleetMonitor(
        [
            HTTPNode(url)
            for url in [primary.url] + [service.url for service in followers]
        ],
        suspicion_s=SUSPICION_S,
        drain_s=2.0,
    )
    coordinator = CoordinatorServer(monitor)
    coordinator.start()
    stop = threading.Event()
    monitor_thread = threading.Thread(
        target=monitor.run,
        kwargs={"interval_s": MONITOR_INTERVAL_S, "stop": stop},
        daemon=True,
    )
    monitor_thread.start()

    client = FleetClient(
        [],
        coordinator_url=coordinator.url,
        failover_timeout_s=FAILOVER_TIMEOUT_S,
    )
    try:
        for row in delta_rows[:5]:
            assert client.insert([list(row)])["status"] == "committed"
        deadline = time.monotonic() + FAILOVER_TIMEOUT_S
        while monitor.primary_url is None and time.monotonic() < deadline:
            time.sleep(0.01)
        assert monitor.primary_url == primary.url

        killed_at = time.monotonic()
        primary.shutdown()
        # The write blocks across the failover window and returns once
        # it lands on the newly promoted primary: the client-side MTTR.
        outcome = client.insert([list(delta_rows[5])])
        first_write_s = time.monotonic() - killed_at
        assert outcome["status"] == "committed"
        record = monitor.last_failover
        assert record is not None and monitor.failovers_total == 1

        # Read-your-writes on the surviving fleet still holds.
        assert client.dcs()["dcs"]
        return {
            "detect_s": record["detected_at"] - killed_at,
            "fence_s": record["fenced_at"] - record["detected_at"],
            "drain_s": record["drained_at"] - record["fenced_at"],
            "promote_s": record["promoted_at"] - record["drained_at"],
            "repoint_s": record["repointed_at"] - record["promoted_at"],
            "first_write_s": first_write_s,
            "epoch": record["epoch"],
            "new_primary": record["new_primary"],
            "write_retries": client.write_retries_total,
        }
    finally:
        stop.set()
        monitor_thread.join()
        coordinator.close()
        for service in followers:
            service.shutdown()
        primary.shutdown()


def test_fleet_failover(benchmark, tmp_path):
    table = ResultTable(
        "Fleet control plane — fencing determinism and failover MTTR",
        [
            "scenario",
            "epoch",
            "fenced",
            "discarded",
            "detect_ms",
            "promote_ms",
            "mttr_ms",
        ],
        "fleet_failover.txt",
    )

    replay = run_fence_replay(tmp_path)
    assert replay["identical"], (
        "fence-replay survivors diverged from the promoted primary"
    )
    assert replay["fenced_polls"] == FENCED_POLLS, replay
    assert replay["frames_fenced"] == FENCED_POLLS, replay
    assert replay["fenced_writes"] == 1, replay
    assert replay["tail_discarded"] > 0, replay
    table.add(
        "fence-replay",
        replay["epoch"],
        replay["frames_fenced"],
        replay["tail_discarded"],
        "-",
        "-",
        round(replay["rejoin_wall_s"] * 1000, 1),
    )
    # Deterministic split-brain counters for the CI bench gate: how many
    # zombie feeds were rejected, how many dead-epoch writes refused,
    # and how much diverged tail the rejoin discarded.
    table.counters["fence-replay"] = {
        "fleet.epoch": replay["epoch"],
        "fleet.frames_fenced": replay["frames_fenced"],
        "fleet.fenced_writes": replay["fenced_writes"],
        "fleet.tail_discarded": replay["tail_discarded"],
        "replication.frames_applied": replay["frames_applied"],
    }

    live = run_live_failover(tmp_path)
    table.add(
        "http-failover",
        live["epoch"],
        0,
        0,
        round(live["detect_s"] * 1000, 1),
        round(live["promote_s"] * 1000, 1),
        round(live["first_write_s"] * 1000, 1),
    )
    table.extras["failover"] = {
        key: (round(value, 6) if isinstance(value, float) else value)
        for key, value in live.items()
    }

    table.finish(
        shape_notes=[
            "fence-replay: every zombie poll rejected, every dead-epoch "
            "write refused, rejoin discards the diverged tail — both "
            "survivors byte-identical to the promoted primary",
            f"http-failover: suspicion window {SUSPICION_S:g}s, monitor "
            f"interval {MONITOR_INTERVAL_S:g}s; mttr_ms is kill to first "
            "acknowledged write through the coordinator-routed client",
            "MTTR columns are wall clock and logged for the trajectory, "
            "never gated — only the fence-replay counters are pinned",
        ]
    )

    benchmark.pedantic(
        lambda: run_fence_replay(tmp_path / "bench"),
        rounds=1,
        iterations=1,
    )
