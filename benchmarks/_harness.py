"""Shared infrastructure for the experiment benchmarks.

Every benchmark module reproduces one table or figure of the paper (see
DESIGN.md §5 and EXPERIMENTS.md).  This module provides:

- scaled-down default workload sizes per dataset (the originals are far
  beyond a pure-Python per-pair budget; scale with ``REPRO_BENCH_SCALE``);
- cached static bootstraps: fitting 3DC on the static part of a workload
  is the *setup* of every dynamic experiment, so fitted states are cloned
  from a serialized snapshot instead of re-fitted;
- a plain-text table writer that prints each reproduced table/figure and
  persists it under ``benchmarks/results/`` — alongside a machine-readable
  JSON twin (``results/<name>.json``, deterministic key order) carrying
  the same rows plus any per-phase breakdowns recorded with
  :meth:`ResultTable.add_phases`, so perf PRs get a diffable before/after
  trajectory for free.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Optional

from repro.core.discoverer import DCDiscoverer
from repro.core.state_io import state_from_dict, state_to_dict
from repro.workloads import DATASETS, split_for_insert

#: Scale multiplier for all row counts (e.g. REPRO_BENCH_SCALE=4 for a
#: longer, larger run on a faster machine).
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Default *total* row counts per dataset before the 70/30 split.  The
#: originals (PAPER_ROW_COUNTS) are 14 k – 780 k; these are chosen so the
#: full benchmark suite completes in minutes in pure Python while keeping
#: the datasets' relative difficulty (Adult and UCE hardest per row).
BASE_ROWS = {
    "Adult": 360,
    "Airport": 700,
    "Atom": 500,
    "Claim": 600,
    "Dit": 900,
    "FD": 320,
    "Flight": 320,
    "Hospital": 700,
    "Inspection": 500,
    "NCVoter": 400,
    "Tax": 600,
    "UCE": 300,
}

#: Datasets used by the sweep figures (a representative mix, as the paper
#: does for its in-depth Section VII-C experiments).
SWEEP_DATASETS = ("Airport", "Claim", "Dit", "Tax")

RESULTS_DIR = Path(__file__).parent / "results"


def rows_for(name: str) -> int:
    """Scaled total row count for a dataset."""
    return max(40, int(BASE_ROWS[name] * SCALE))


def dataset_rows(name: str, n_rows: int, seed: int = 0):
    """Raw rows of a synthetic dataset."""
    return DATASETS[name].rows(n_rows, seed=seed)


_state_cache = {}


def fitted_state_payload(name: str, static_rows, **discoverer_kwargs) -> dict:
    """Serialized snapshot of a discoverer fitted on ``static_rows``.

    Cached per (dataset, size, config) so the many per-ratio measurements
    of one experiment share a single static bootstrap.
    """
    key = (name, len(static_rows), tuple(sorted(discoverer_kwargs.items())))
    if key not in _state_cache:
        from repro.relational.loader import relation_from_rows

        relation = relation_from_rows(
            DATASETS[name].header, static_rows
        )
        discoverer = DCDiscoverer(relation, **discoverer_kwargs)
        discoverer.fit()
        _state_cache[key] = state_to_dict(discoverer)
    return _state_cache[key]


def clone_discoverer(payload: dict) -> DCDiscoverer:
    """Fresh, independent discoverer from a cached snapshot."""
    return state_from_dict(payload)


def insert_workload(
    name: str, ratio: float, total_rows: Optional[int] = None, seed: int = 0
):
    """The paper's insert workload: retain 70 %, draw ``ratio``·|r| extra.

    Returns ``(static_rows, delta_rows)``; the delta is floored at one row
    (0.1 % of a scaled-down table would otherwise be empty).
    """
    if total_rows is None:
        total_rows = rows_for(name)
    rows = dataset_rows(name, total_rows, seed=seed)
    workload = split_for_insert(rows, ratio=ratio, retain=0.7, seed=seed)
    delta = list(workload.delta_rows)
    if not delta:
        spare = rows[workload.static_size :]
        delta = list(spare[:1])
    return list(workload.static_rows), delta


def timed(callable_):
    """Run ``callable_`` once, returning (result, elapsed_seconds)."""
    started = time.perf_counter()
    result = callable_()
    return result, time.perf_counter() - started


class ResultTable:
    """Collects rows and renders/persists a paper-style table."""

    def __init__(self, title: str, columns, filename: str):
        self.title = title
        self.columns = list(columns)
        self.filename = filename
        self.rows = []
        self.phases = {}
        self.counters = {}
        #: Free-form extra payloads for the JSON twin (e.g. per-endpoint
        #: latency quantiles) — keep values JSON-serializable.
        self.extras = {}

    def add(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row arity {len(values)} != {len(self.columns)} columns"
            )
        self.rows.append(values)

    def add_phases(self, label: str, source) -> None:
        """Record a per-phase wall-clock breakdown for the JSON report.

        ``source`` is a ``RunReport`` (its first span level is used), a
        result object carrying one (``.report``), or a plain
        ``{phase: seconds}`` dict.  When the source carries probe
        counters, they are snapshotted alongside the timings: wall-clock
        is noisy, but the work counters (pair comparisons, context
        refinements, index probes) are deterministic, so the JSON twin
        doubles as a regression oracle for the CI bench gate.
        """
        report = getattr(source, "report", source)
        if hasattr(report, "phase_timings"):
            breakdown = report.phase_timings()
            self.add_counters(label, source)
        elif isinstance(report, dict):
            breakdown = dict(report)
        else:
            raise TypeError(
                f"cannot extract phase timings from {type(source).__name__}"
            )
        self.phases[label] = {
            phase: round(seconds, 6) for phase, seconds in breakdown.items()
        }

    def add_counters(self, label: str, source) -> None:
        """Snapshot the probe counters of a run into the JSON report."""
        report = getattr(source, "report", source)
        metrics = getattr(report, "metrics", None)
        counters = metrics.get("counters") if isinstance(metrics, dict) else None
        if counters:
            self.counters[label] = {
                name: counters[name] for name in sorted(counters)
            }

    def _format(self) -> str:
        def render(value):
            if isinstance(value, float):
                return f"{value:.3f}"
            return str(value)

        rendered = [[render(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(row[i]) for row in rendered))
            if rendered
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in rendered:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def _json_payload(self, shape_notes) -> dict:
        def jsonable(value):
            if isinstance(value, float):
                return round(value, 6)
            if value is None or isinstance(value, (int, str, bool)):
                return value
            return str(value)

        return {
            "title": self.title,
            "columns": self.columns,
            "rows": [[jsonable(value) for value in row] for row in self.rows],
            "notes": list(shape_notes),
            "phases": self.phases,
            "counters": self.counters,
            "extras": self.extras,
        }

    def finish(self, shape_notes=()) -> str:
        """Print the table, append shape-verdict notes, persist to disk.

        Writes two files under ``results/``: the human-readable text table
        and its JSON twin (same stem, ``.json`` suffix) with rows, notes,
        and any recorded per-phase breakdowns.  JSON keys are sorted so
        re-runs produce reviewable diffs.
        """
        text = self._format()
        for note in shape_notes:
            text += f"\nshape: {note}"
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / self.filename).write_text(text + "\n")
        json_path = (RESULTS_DIR / self.filename).with_suffix(".json")
        json_path.write_text(
            json.dumps(self._json_payload(shape_notes), indent=2, sort_keys=True)
            + "\n"
        )
        print("\n" + text)
        return text


class CellTimeout(Exception):
    """A single experiment cell exceeded its time budget."""


def run_with_timeout(callable_, seconds: int):
    """Run ``callable_`` with a wall-clock cap, mirroring the paper's
    24 h-limit "—" cells.  Returns ``(result, elapsed)`` or raises
    :class:`CellTimeout`."""
    import signal

    def handler(signum, frame):
        raise CellTimeout()

    previous = signal.signal(signal.SIGALRM, handler)
    signal.alarm(seconds)
    try:
        started = time.perf_counter()
        result = callable_()
        return result, time.perf_counter() - started
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


#: Per-cell wall-clock budget (seconds) standing in for the paper's 24 h.
CELL_TIMEOUT = int(os.environ.get("REPRO_BENCH_CELL_TIMEOUT", "120"))


def geometric_speedup(pairs) -> float:
    """Geometric mean of baseline/candidate time ratios (>1 = faster)."""
    ratios = [base / cand for base, cand in pairs if cand > 0 and base > 0]
    if not ratios:
        return 1.0
    product = 1.0
    for ratio in ratios:
        product *= ratio
    return product ** (1.0 / len(ratios))
