"""Figure 8 — impact of different dimensions on 3DC performance.

Paper: for increasing insert ratios, plots per dataset the number of rows,
newly discovered evidences, evidence-building time, number of DCs, new
DCs vs the previous set, and DC-enumeration time.  Key observed shapes:
(i) evidence-building time tracks the incremental size; (ii) the number of
new evidences is comparatively low (evidence sets saturate); (iii) the
total number of DCs stays roughly stable across ratios while the number of
*new* DCs grows with the number of new evidences, driving enumeration
time.  Reproduction: the same λ sweep with 3DC's instrumented results.
"""

from _harness import (
    ResultTable,
    SWEEP_DATASETS,
    clone_discoverer,
    fitted_state_payload,
    insert_workload,
)

RATIOS = (0.01, 0.05, 0.1, 0.2, 0.3)


def test_fig8_dimensions(benchmark):
    table = ResultTable(
        "Figure 8 — dimension impact on 3DC (insert sweep)",
        [
            "dataset", "ratio", "|Δr|", "|E|", "new E",
            "evi s", "DCs", "new DCs", "enum s",
        ],
        "fig8_dimensions.txt",
    )
    saturation_ok = []
    stability_ok = []
    for name in SWEEP_DATASETS:
        dc_counts = []
        for ratio in RATIOS:
            static_rows, delta_rows = insert_workload(name, ratio)
            payload = fitted_state_payload(name, static_rows)
            discoverer = clone_discoverer(payload)
            result = discoverer.insert(delta_rows)
            table.add(
                name, ratio, result.delta_size, result.n_evidence,
                result.n_evidence_changed,
                round(result.timings["evidence"], 3),
                result.n_dcs, result.n_new_dcs,
                round(result.timings["enumeration"], 3),
            )
            dc_counts.append(result.n_dcs)
            # (ii) evidence saturation: new distinct evidences are a small
            # share of the updated evidence set even at λ=0.3.
            if ratio == RATIOS[-1]:
                saturation_ok.append(
                    result.n_evidence_changed < result.n_evidence
                )
        # (iii) DC-count stability: max/min within a small factor.
        stability_ok.append(max(dc_counts) <= 3 * min(dc_counts))

    table.finish(
        shape_notes=[
            f"evidence saturation at λ=0.3 on "
            f"{sum(saturation_ok)}/{len(saturation_ok)} datasets "
            "(paper: new evidences are a minor share)",
            f"DC count stable across ratios on "
            f"{sum(stability_ok)}/{len(stability_ok)} datasets "
            "(paper: totals stable, new DCs track new evidence)",
        ]
    )
    assert all(saturation_ok)
    assert sum(stability_ok) >= len(stability_ok) - 1

    static_rows, delta_rows = insert_workload(SWEEP_DATASETS[1], 0.2)
    payload = fitted_state_payload(SWEEP_DATASETS[1], static_rows)
    benchmark.pedantic(
        lambda: clone_discoverer(payload).insert(delta_rows),
        rounds=1, iterations=1,
    )
