"""CI performance-regression gate over the benchmark suite.

Wall-clock on shared CI runners is too noisy to gate on, so the gate
compares what *is* deterministic:

1. **Work counters** — the probe counters snapshotted into each
   ``results/*.json`` record (pair comparisons, context refinements,
   index probes, kernel batches).  They are a pure function of the
   workload, so any change means the engine is doing different work —
   a counter that grew beyond the tolerance fails the gate.
2. **State digests** — SHA-256 of the canonical serialized state after
   fixed maintenance workloads, computed per evidence backend.  The
   python and numpy kernels must agree with each other *and* with the
   committed baseline; the pair-grid executor (workers=2, shards=4,
   see docs/distributed.md) must reproduce the serial digest exactly,
   and its deterministic ``executor.*`` dispatch counters are gated like
   the evidence work counters.

Usage::

    python benchmarks/bench_gate.py            # run benchmarks + compare
    python benchmarks/bench_gate.py --update   # refresh the baselines
    python benchmarks/bench_gate.py --skip-bench   # compare existing results

The gate row counts are reduced (``GATE_SCALE``) so the whole job stays
in CI budget; baselines are committed for exactly that scale.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
RESULTS_DIR = BENCH_DIR / "results"
BASELINE_PATH = BENCH_DIR / "baselines" / "bench_gate.json"

#: Row-count multiplier the gate runs (and its baselines were recorded) at.
GATE_SCALE = float(os.environ.get("REPRO_GATE_SCALE", "0.5"))

#: Benchmarks the gate executes, and the results files it then audits.
GATE_BENCHMARKS = (
    "bench_fig5_insert_scaling.py",
    "bench_fig13_breakdown.py",
    "bench_verification.py",
    "bench_replication.py",
    "bench_fleet.py",
)
GATE_RESULTS = (
    "fig5_insert_scaling.json",
    "fig5_backend_speedup.json",
    "fig13a_breakdown_static.json",
    "fig13b_breakdown_inserts.json",
    "verification_kernel.json",
    "replication.json",
    "fleet_failover.json",
)

#: Fixed digest workloads: (dataset, delete strategy).
DIGEST_WORKLOADS = (("Tax", "index"), ("Airport", "recompute"))


def run_benchmarks() -> None:
    env = dict(os.environ)
    env["REPRO_BENCH_SCALE"] = str(GATE_SCALE)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    command = [
        sys.executable,
        "-m",
        "pytest",
        *(str(BENCH_DIR / name) for name in GATE_BENCHMARKS),
        "-q",
        "-p",
        "no:cacheprovider",
    ]
    print(f"gate: running benchmarks at scale {GATE_SCALE:g}", flush=True)
    subprocess.run(command, check=True, env=env, cwd=REPO_ROOT)


def collect_counters() -> dict:
    counters = {}
    for filename in GATE_RESULTS:
        path = RESULTS_DIR / filename
        payload = json.loads(path.read_text())
        counters[filename] = payload.get("counters", {})
    return counters


def compute_digests() -> dict:
    """Canonical state digests of fixed workloads, one per backend."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.core.state_io import state_to_bytes
    from repro.evidence.kernels import numpy_available
    from _harness import (
        BASE_ROWS,
        clone_discoverer,
        fitted_state_payload,
        insert_workload,
    )

    backends = ("python", "numpy") if numpy_available() else ("python",)
    digests = {}
    for name, delete_strategy in DIGEST_WORKLOADS:
        total_rows = max(40, int(BASE_ROWS[name] * GATE_SCALE))
        static_rows, delta_rows = insert_workload(
            name, 0.2, total_rows=total_rows
        )
        payload = fitted_state_payload(
            name, static_rows, delete_strategy=delete_strategy
        )
        per_backend = {}
        for backend in backends:
            discoverer = clone_discoverer(payload)
            discoverer.backend = backend
            half = len(delta_rows) // 2 or 1
            discoverer.insert(delta_rows[:half])
            rids = sorted(discoverer.relation.rids())
            discoverer.delete(rids[1::5])
            discoverer.insert(delta_rows[half:])
            per_backend[backend] = hashlib.sha256(
                state_to_bytes(discoverer)
            ).hexdigest()
        label = f"{name}/{delete_strategy}"
        if len(set(per_backend.values())) != 1:
            raise SystemExit(
                f"gate: FAIL — backends disagree on {label}: {per_backend}"
            )
        digests[label] = next(iter(per_backend.values()))
        print(
            f"gate: digest {label} = {digests[label][:16]}… "
            f"({' = '.join(backends)})"
        )
    return digests


def distributed_gate_check(digests: dict) -> dict:
    """Pair-grid determinism gate (docs/distributed.md).

    Re-runs the first digest workload on the in-process grid executor
    (``workers=2, executor="serial", shards=4``) and demands the exact
    serial state digest — a grid kernel that drifts from its serial
    counterpart fails the gate here even if every unit test was skipped.
    The run's ``executor.*`` dispatch counters are deterministic for the
    serial executor (task count is a pure function of the grid), so they
    are written to ``results/distributed_gate.json`` and gated against
    the committed baselines alongside the evidence work counters.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.core.state_io import state_to_bytes
    from _harness import (
        BASE_ROWS,
        clone_discoverer,
        fitted_state_payload,
        insert_workload,
    )

    name, delete_strategy = DIGEST_WORKLOADS[0]
    total_rows = max(40, int(BASE_ROWS[name] * GATE_SCALE))
    static_rows, delta_rows = insert_workload(name, 0.2, total_rows=total_rows)
    payload = fitted_state_payload(
        name, static_rows, delete_strategy=delete_strategy
    )

    discoverer = clone_discoverer(payload)
    discoverer.workers = 2
    discoverer.executor = "serial"
    discoverer.shards = 4
    half = len(delta_rows) // 2 or 1
    reports = [discoverer.insert(delta_rows[:half]).report]
    reports.append(
        discoverer.delete(sorted(discoverer.relation.rids())[1::5]).report
    )
    reports.append(discoverer.insert(delta_rows[half:]).report)
    digest = hashlib.sha256(state_to_bytes(discoverer)).hexdigest()

    label = f"{name}/{delete_strategy}"
    expected = digests[label]
    if digest != expected:
        raise SystemExit(
            f"gate: FAIL — pair-grid state digest diverged from serial on "
            f"{label} (workers=2, shards=4): {expected[:16]}… -> "
            f"{digest[:16]}…"
        )

    counters: dict = {}
    for report in reports:
        for key, value in report.metrics["counters"].items():
            counters[key] = counters.get(key, 0) + value
    gated = {
        key: counters[key]
        for key in sorted(counters)
        if key.startswith(("executor.", "parallel.", "evidence."))
    }
    grid_label = f"{label} workers=2 shards=4 serial-executor"
    record = {
        "workload": grid_label,
        "scale": GATE_SCALE,
        "digest": digest,
        "counters": {grid_label: gated},
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "distributed_gate.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )
    print(
        f"gate: pair-grid digest OK — {label} on the 4-shard grid matches "
        f"serial ({digest[:16]}…), {len(gated)} executor/evidence counters "
        "snapshotted"
    )
    return record["counters"]


def trace_overhead_check() -> dict:
    """Tracing must observe the engine, never change it.

    Runs one fixed maintenance workload twice — with a flight recorder
    installed under an active trace context, and fully untraced — and
    demands byte-identical work counters and state digests.  No committed
    baseline: the run is its own oracle (traced vs untraced).  Wall-clock
    overhead is logged to ``results/trace_overhead.json`` for the perf
    trajectory but never gated on (CI wall time is noise).
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    import time

    from repro.core.state_io import state_to_bytes
    from repro.observability.flight import FlightRecorder, set_recorder
    from repro.observability.tracectx import TraceContext, activate
    from _harness import (
        BASE_ROWS,
        clone_discoverer,
        fitted_state_payload,
        insert_workload,
    )

    name, delete_strategy = DIGEST_WORKLOADS[0]
    total_rows = max(40, int(BASE_ROWS[name] * GATE_SCALE))
    static_rows, delta_rows = insert_workload(name, 0.2, total_rows=total_rows)
    payload = fitted_state_payload(
        name, static_rows, delete_strategy=delete_strategy
    )

    def run(traced: bool):
        discoverer = clone_discoverer(payload)
        half = len(delta_rows) // 2 or 1
        previous = None
        if traced:
            previous = set_recorder(FlightRecorder(max_spans=4096))
        started = time.perf_counter()
        try:
            context = activate(TraceContext.mint()) if traced else None
            if context is not None:
                context.__enter__()
            try:
                reports = [
                    discoverer.insert(delta_rows[:half]).report,
                    discoverer.delete(
                        sorted(discoverer.relation.rids())[1::5]
                    ).report,
                    discoverer.insert(delta_rows[half:]).report,
                ]
            finally:
                if context is not None:
                    context.__exit__(None, None, None)
        finally:
            if traced:
                set_recorder(previous)
        wall = time.perf_counter() - started
        counters = json.dumps(
            [report.metrics["counters"] for report in reports], sort_keys=True
        )
        digest = hashlib.sha256(state_to_bytes(discoverer)).hexdigest()
        return counters, digest, wall

    untraced_counters, untraced_digest, untraced_wall = run(traced=False)
    traced_counters, traced_digest, traced_wall = run(traced=True)
    if traced_counters != untraced_counters:
        raise SystemExit(
            "gate: FAIL — work counters differ with tracing enabled "
            f"({name}/{delete_strategy})"
        )
    if traced_digest != untraced_digest:
        raise SystemExit(
            "gate: FAIL — state digest differs with tracing enabled "
            f"({name}/{delete_strategy})"
        )
    report = {
        "workload": f"{name}/{delete_strategy}",
        "scale": GATE_SCALE,
        "counters_identical": True,
        "digest_identical": True,
        "untraced_wall_s": round(untraced_wall, 6),
        "traced_wall_s": round(traced_wall, 6),
        "overhead_ratio": round(
            traced_wall / untraced_wall if untraced_wall else 1.0, 4
        ),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "trace_overhead.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    print(
        f"gate: trace overhead OK — counters and digest byte-identical, "
        f"wall {untraced_wall:.3f}s -> {traced_wall:.3f}s "
        f"(x{report['overhead_ratio']:.2f}, logged, not gated)"
    )
    return report


def compare_counters(baseline: dict, current: dict, tolerance: float) -> list:
    problems = []
    for filename, labels in baseline.items():
        seen = current.get(filename, {})
        for label, expected in labels.items():
            actual = seen.get(label)
            if actual is None:
                problems.append(f"{filename}: record {label!r} disappeared")
                continue
            for counter, value in expected.items():
                found = actual.get(counter)
                if found is None:
                    problems.append(
                        f"{filename}: {label!r} lost counter {counter}"
                    )
                    continue
                bound = abs(value) * tolerance
                if abs(found - value) > bound:
                    kind = "regressed" if found > value else "drifted down"
                    problems.append(
                        f"{filename}: {label!r} {counter} {kind}: "
                        f"{value} -> {found} "
                        f"({(found - value) / value if value else found:+.1%},"
                        f" tolerance {tolerance:.1%})"
                    )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the committed baselines from this run",
    )
    parser.add_argument(
        "--skip-bench",
        action="store_true",
        help="compare existing results/ files without re-running benchmarks",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.02,
        help="relative counter tolerance (default 2%%)",
    )
    args = parser.parse_args(argv)

    if not args.skip_bench:
        run_benchmarks()
    counters = collect_counters()
    digests = compute_digests()
    counters["distributed_gate.json"] = distributed_gate_check(digests)
    trace_overhead_check()

    if args.update:
        BASELINE_PATH.parent.mkdir(exist_ok=True)
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "scale": GATE_SCALE,
                    "counters": counters,
                    "digests": digests,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"gate: baselines updated at {BASELINE_PATH}")
        return 0

    if not BASELINE_PATH.exists():
        print(
            f"gate: no baselines at {BASELINE_PATH}; "
            "run with --update to create them",
            file=sys.stderr,
        )
        return 2
    baseline = json.loads(BASELINE_PATH.read_text())
    if baseline.get("scale") != GATE_SCALE:
        print(
            f"gate: baselines recorded at scale {baseline.get('scale')} "
            f"but the gate is running at {GATE_SCALE}",
            file=sys.stderr,
        )
        return 2

    problems = compare_counters(
        baseline.get("counters", {}), counters, args.tolerance
    )
    for label, expected in baseline.get("digests", {}).items():
        found = digests.get(label)
        if found != expected:
            problems.append(
                f"state digest {label}: {expected[:16]}… -> "
                f"{(found or 'missing')[:16]}…"
            )

    if problems:
        print(f"gate: FAIL — {len(problems)} divergence(s):", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        print(
            "gate: if the change is intentional, refresh with "
            "`python benchmarks/bench_gate.py --update`",
            file=sys.stderr,
        )
        return 1
    n_counters = sum(
        len(values) for labels in counters.values() for values in labels.values()
    )
    print(
        f"gate: OK — {n_counters} counters and {len(digests)} state digests "
        "match the baselines"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
