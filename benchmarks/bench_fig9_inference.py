"""Figure 9 — evidence inference among the incremental tuples (Base vs Opt).

Paper: DynEvi(Base) applies the symmetric-evidence inference only against
static tuples; DynEvi(Opt) also applies it among the incremental tuples,
so each intra-batch pair is reconciled once instead of twice.  Runtime
improves, increasingly with batch size.  Reproduction: evidence-building
time only, growing insert batches, both modes.  Expected shape: Opt ≤
Base everywhere, with the gap widening as the batch grows.
"""

from _harness import (
    ResultTable,
    SWEEP_DATASETS,
    clone_discoverer,
    fitted_state_payload,
    insert_workload,
    rows_for,
)

RATIOS = (0.05, 0.1, 0.2, 0.3, 0.4)


def _evidence_time(payload, delta_rows, infer_within_delta):
    discoverer = clone_discoverer(payload)
    discoverer.infer_within_delta = infer_within_delta
    result = discoverer.insert(delta_rows)
    return result.timings["evidence"]


def test_fig9_inference_strategies(benchmark):
    table = ResultTable(
        "Figure 9 — dynamic evidence building: DynEvi(Base) vs DynEvi(Opt)",
        ["dataset", "|Δr|", "Base s", "Opt s", "speedup"],
        "fig9_inference.txt",
    )
    small_gap = []
    large_gap = []
    for name in SWEEP_DATASETS:
        total = int(rows_for(name) * 1.2)
        for index, ratio in enumerate(RATIOS):
            static_rows, delta_rows = insert_workload(name, ratio, total_rows=total)
            payload = fitted_state_payload(name, static_rows)
            base_time = _evidence_time(payload, delta_rows, False)
            opt_time = _evidence_time(payload, delta_rows, True)
            speedup = base_time / opt_time if opt_time else 1.0
            table.add(name, len(delta_rows), base_time, opt_time, speedup)
            (small_gap if index == 0 else large_gap).append(speedup)

    mean_large = sum(large_gap) / len(large_gap)
    table.finish(
        shape_notes=[
            f"Opt over Base mean speedup {mean_large:.2f}x at larger "
            "batches (paper: runtime improves, particularly with more tuples)",
        ]
    )
    # Intra-batch pairs are a minority of the work at these ratios; Opt
    # must at least not lose, and win on average for large batches.
    assert mean_large > 1.0

    static_rows, delta_rows = insert_workload("Dit", 0.3)
    payload = fitted_state_payload("Dit", static_rows)
    benchmark.pedantic(
        lambda: _evidence_time(payload, delta_rows, True),
        rounds=1, iterations=1,
    )
