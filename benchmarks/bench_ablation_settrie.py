"""Ablation — set-trie vs linear scan for DynEI's set queries.

Section VI-C: the violated-DC search (a subset query per evidence) and the
candidate-minimality check "can be naively implemented by comparing ... to
all (current) DCs"; the paper instead uses the tree structure of [2].
This ablation quantifies that choice on a real DC antichain.
"""

import random

from _harness import ResultTable, rows_for, timed

from repro.enumeration import SetTrie
from repro.enumeration.mmcs import mmcs_enumerate
from repro.evidence import build_evidence_state
from repro.predicates import build_predicate_space
from repro.workloads import generate_dataset

DATASET = "Tax"


def test_ablation_settrie_vs_linear(benchmark):
    relation = generate_dataset(DATASET, rows_for(DATASET))
    space = build_predicate_space(relation)
    state = build_evidence_state(relation, space)
    evidence = list(state.evidence)
    sigma = mmcs_enumerate(space, evidence)
    trie = SetTrie(sigma)
    rng = random.Random(0)
    queries = rng.sample(evidence, min(200, len(evidence)))

    def trie_subset_queries():
        return sum(len(trie.subsets_of(e)) for e in queries)

    def linear_subset_queries():
        total = 0
        for e in queries:
            total += sum(1 for mask in sigma if mask & e == mask)
        return total

    trie_hits, trie_time = timed(trie_subset_queries)
    linear_hits, linear_time = timed(linear_subset_queries)
    assert trie_hits == linear_hits, "query structures disagree"

    candidates = [
        mask | (1 << rng.randrange(space.n_bits)) for mask in sigma[:500]
    ]

    def trie_minimality_checks():
        return sum(trie.has_subset_of(c) for c in candidates)

    def linear_minimality_checks():
        return sum(
            any(mask & c == mask for mask in sigma) for c in candidates
        )

    trie_min, trie_min_time = timed(trie_minimality_checks)
    linear_min, linear_min_time = timed(linear_minimality_checks)
    assert trie_min == linear_min

    table = ResultTable(
        f"Ablation — set-trie vs linear scan (|Σ|={len(sigma)}, {DATASET})",
        ["operation", "set-trie (s)", "linear scan (s)", "speedup"],
        "ablation_settrie.txt",
    )
    table.add(
        "violated-DC search (line 4)", trie_time, linear_time,
        linear_time / trie_time if trie_time else float("inf"),
    )
    table.add(
        "minimality check (line 8)", trie_min_time, linear_min_time,
        linear_min_time / trie_min_time if trie_min_time else float("inf"),
    )
    table.finish(
        shape_notes=[
            "the tree structure of [2] pays off on both hot operations "
            "(Section VI-C implementation note)",
        ]
    )
    benchmark.pedantic(trie_subset_queries, rounds=1, iterations=1)
