"""Table II — running times of 3DC, IncDC, and ECP on insert workloads.

Paper: |Δr| = λ·|r| for λ ∈ {0.1 %, 1 %, 10 %, 30 %} over 12 datasets;
3DC wins every cell, IncDC frequently exceeds the time limit ("—"), and
the static ECP beats IncDC on several datasets while losing to 3DC
everywhere (hugely at small λ).

Scaled-down reproduction: same 12 synthetic datasets (column counts match
Table II), same 70 %-retain/λ-draw workload construction, per-cell timeout
standing in for the 24 h limit.  Expected shape, not absolute numbers:
3DC fastest in (nearly) every cell; ECP roughly flat across λ while 3DC
grows with λ.
"""

from _harness import (
    CELL_TIMEOUT,
    BASE_ROWS,
    CellTimeout,
    ResultTable,
    clone_discoverer,
    fitted_state_payload,
    insert_workload,
    run_with_timeout,
    timed,
)

from repro.baselines import IncDC, ecp_discover
from repro.relational.loader import relation_from_rows
from repro.workloads import DATASETS

RATIOS = (0.001, 0.01, 0.1, 0.3)


def _measure_cell(name, payload, static_rows, delta_rows):
    """One (dataset, ratio) cell: 3DC insert, IncDC insert, ECP re-run."""
    cells = {}

    discoverer = clone_discoverer(payload)
    _, cells["3DC"] = timed(lambda: discoverer.insert(delta_rows))

    def run_incdc():
        base = clone_discoverer(payload)
        incdc = IncDC(base.relation, base.space, base.dc_masks)
        incdc.insert(delta_rows)

    try:
        _, cells["IncDC"] = run_with_timeout(run_incdc, CELL_TIMEOUT)
    except CellTimeout:
        cells["IncDC"] = None

    def run_ecp():
        updated = relation_from_rows(
            DATASETS[name].header, list(static_rows) + list(delta_rows)
        )
        ecp_discover(updated)

    try:
        _, cells["ECP"] = run_with_timeout(run_ecp, CELL_TIMEOUT)
    except CellTimeout:
        cells["ECP"] = None
    return cells


def test_table2_runtimes(benchmark):
    table = ResultTable(
        "Table II — runtimes (seconds); '—' = cell timeout "
        f"({CELL_TIMEOUT}s stand-in for the paper's 24h limit)",
        ["dataset", "rows", "ratio", "3DC", "IncDC", "ECP"],
        "table2_runtimes.txt",
    )
    wins_vs_incdc = []
    wins_vs_ecp_small = []

    for name in sorted(BASE_ROWS):
        for ratio in RATIOS:
            static_rows, delta_rows = insert_workload(name, ratio)
            payload = fitted_state_payload(name, static_rows)
            cells = _measure_cell(name, payload, static_rows, delta_rows)

            def show(value):
                return "—" if value is None else round(value, 3)

            table.add(
                name,
                len(static_rows),
                ratio,
                show(cells["3DC"]),
                show(cells["IncDC"]),
                show(cells["ECP"]),
            )
            if cells["IncDC"] is not None:
                wins_vs_incdc.append(cells["3DC"] < cells["IncDC"])
            else:
                wins_vs_incdc.append(True)  # the timeout is itself a loss
            if ratio <= 0.01 and cells["ECP"] is not None:
                wins_vs_ecp_small.append(cells["3DC"] < cells["ECP"])

    incdc_rate = sum(wins_vs_incdc) / len(wins_vs_incdc)
    ecp_rate = (
        sum(wins_vs_ecp_small) / len(wins_vs_ecp_small)
        if wins_vs_ecp_small
        else 1.0
    )
    table.finish(
        shape_notes=[
            f"3DC beats IncDC in {incdc_rate:.0%} of cells (paper: all)",
            f"3DC beats static ECP at λ≤1% in {ecp_rate:.0%} of datasets "
            "(paper: all, by orders of magnitude)",
        ]
    )
    assert incdc_rate >= 0.75, "3DC should dominate IncDC"
    assert ecp_rate >= 0.75, "3DC should dominate ECP at small ratios"

    # Headline single-cell metric for the pytest-benchmark table.
    static_rows, delta_rows = insert_workload("Tax", 0.1)
    payload = fitted_state_payload("Tax", static_rows)

    def headline():
        clone_discoverer(payload).insert(delta_rows)

    benchmark.pedantic(headline, rounds=1, iterations=1)
