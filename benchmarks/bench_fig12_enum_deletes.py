"""Figure 12 — dynamic DC enumeration on deletes: DynEI vs DynHS.

Paper: enumeration-phase runtime only on delete batches; (a) growing
deletes, (b) 10 % deletes with growing column counts.  Deletions are more
expensive than insertions for both algorithms (non-minimal DCs must be
identified and the result re-grown over the remaining evidence), with
DynEI ahead throughout.  Reproduction: same sweeps at scaled sizes;
expected shape — DynEI below DynHS; delete enumeration slower than the
corresponding insert enumeration.
"""

from _harness import (
    ResultTable,
    geometric_speedup,
    rows_for,
    timed,
)

from repro.enumeration import DynHS, dynei_delete
from repro.enumeration.mmcs import mmcs_enumerate
from repro.evidence import (
    apply_delete_evidence,
    build_evidence_state,
    delete_evidence_by_recompute,
)
from repro.predicates import build_predicate_space
from repro.relational.loader import relation_from_rows
from repro.workloads import DATASETS, pick_delete_rids

SIZE_DATASETS = ("Airport", "Claim", "Dit", "Tax")
RATIOS = (0.05, 0.1, 0.2)
COLUMN_DATASET = "FD"
COLUMN_COUNTS = (5, 8, 11, 14)


def _prepare_delete(name, ratio, column_names=None):
    """Build (space, sigma, previous_evidence, removed, remaining) with the
    evidence phase done outside any timed region."""
    rows = DATASETS[name].rows(rows_for(name), seed=0)
    relation = relation_from_rows(DATASETS[name].header, rows)
    space = build_predicate_space(relation, column_names=column_names)
    state = build_evidence_state(relation, space)
    sigma = mmcs_enumerate(space, list(state.evidence))
    previous_evidence = list(state.evidence)
    doomed = pick_delete_rids(relation, ratio, seed=5)
    delta = delete_evidence_by_recompute(relation, state, doomed)
    removed = apply_delete_evidence(state, delta)
    relation.delete(doomed)
    state.indexes.remove_rows(doomed)
    remaining = list(state.evidence)
    return space, sigma, previous_evidence, removed, remaining


def _measure_pair(space, sigma, previous_evidence, removed, remaining):
    result_dynei, t_dynei = timed(
        lambda: dynei_delete(space, sigma, removed, remaining)
    )
    enumerator = DynHS(space, previous_evidence)  # crit bootstrap untimed
    _, t_dynhs = timed(
        lambda: enumerator.delete_evidence(removed, remaining)
    )
    assert result_dynei == enumerator.dc_masks, "enumerators disagree"
    return t_dynei, t_dynhs


def test_fig12a_delete_size_sweep(benchmark):
    table = ResultTable(
        "Figure 12a — enumeration on deletes, growing batches (s)",
        ["dataset", "ratio", "removed evidences", "DynEI", "DynHS"],
        "fig12a_enum_deletes_size.txt",
    )
    pairs = []
    for name in SIZE_DATASETS:
        for ratio in RATIOS:
            space, sigma, previous, removed, remaining = _prepare_delete(
                name, ratio
            )
            t_dynei, t_dynhs = _measure_pair(
                space, sigma, previous, removed, remaining
            )
            pairs.append((t_dynhs, t_dynei))
            table.add(name, ratio, len(removed), t_dynei, t_dynhs)
    speedup = geometric_speedup(pairs)
    table.finish(
        shape_notes=[
            f"DynEI over DynHS geometric-mean speedup {speedup:.1f}x "
            "(paper: DynEI ahead; deletes costlier than inserts for both)",
        ]
    )
    assert speedup > 1.0

    space, sigma, previous, removed, remaining = _prepare_delete(
        SIZE_DATASETS[2], 0.1
    )
    benchmark.pedantic(
        lambda: dynei_delete(space, sigma, removed, remaining),
        rounds=1, iterations=1,
    )


def test_fig12b_column_sweep(benchmark):
    table = ResultTable(
        "Figure 12b — enumeration on deletes (10%), growing columns (s)",
        ["dataset", "columns", "predicates", "DynEI", "DynHS"],
        "fig12b_enum_deletes_columns.txt",
    )
    header = DATASETS[COLUMN_DATASET].header
    ratios = []
    for n_columns in COLUMN_COUNTS:
        column_names = list(header[:n_columns])
        space, sigma, previous, removed, remaining = _prepare_delete(
            COLUMN_DATASET, 0.1, column_names=column_names
        )
        t_dynei, t_dynhs = _measure_pair(
            space, sigma, previous, removed, remaining
        )
        table.add(COLUMN_DATASET, n_columns, space.n_bits, t_dynei, t_dynhs)
        ratios.append(t_dynhs / t_dynei if t_dynei > 0 else 1.0)
    table.finish(
        shape_notes=[
            f"DynHS/DynEI ratio spans {min(ratios):.1f}x – {max(ratios):.1f}x "
            "across column counts (paper: DynEI much faster for more columns)",
        ]
    )
    assert max(ratios) > 1.0

    benchmark.pedantic(
        lambda: _prepare_delete(
            COLUMN_DATASET, 0.1, column_names=list(header[:5])
        ),
        rounds=1, iterations=1,
    )
