"""Verification fast path — sweep-and-probe kernel vs per-tuple plan.

Checks a held Σ (the DCs discovered on the fig5-scale Tax relation)
against the very relation it was discovered on, twice:

- **per-tuple** — the IncDC-style probe plan: for every tuple and every
  DC, probe the column indexes once per predicate and direction
  (:func:`repro.dcs.violations.violating_partners_for_row`);
- **kernel** — the sweep-and-probe verification kernel
  (:class:`repro.verification.Verifier`): sweep one predicate's index in
  blocks, refine only tuples whose block is non-empty, share probes via
  the per-scan cache.

Both plans must enumerate the identical violating-pair sets (here: none —
a discovered Σ holds on its own data by definition, and a deliberately
broken constraint is checked as the non-empty differential case).  The
gated assertion is on deterministic *work*: the kernel must spend
strictly fewer probe operations (index probes + sweep merge steps) than
the per-tuple plan spends index probes.  The counters feed
``benchmarks/bench_gate.py`` via ``results/verification_kernel.json``.
"""

from _harness import DATASETS, ResultTable, dataset_rows, rows_for

from repro.bitmaps.bitutils import iter_bits
from repro.core.discoverer import DCDiscoverer
from repro.dcs.violations import partners_satisfying, violating_partners_for_row
from repro.relational.loader import relation_from_rows
from repro.verification import Verifier


class _CountingProbes:
    """The per-tuple plan's probe primitive with an operation counter."""

    def __init__(self, indexes):
        self.indexes = indexes
        self.count = 0

    def __call__(self, position, op, value):
        self.count += 1
        return partners_satisfying(self.indexes, position, op, value)


def _per_tuple_pairs(dc, relation, indexes, probes):
    pairs = set()
    for rid in relation.rids():
        as_first, as_second = violating_partners_for_row(
            dc, relation.row(rid), indexes, exclude_bits=1 << rid, probes=probes
        )
        pairs.update((rid, partner) for partner in iter_bits(as_first))
        pairs.update((partner, rid) for partner in iter_bits(as_second))
    return pairs


def test_verification_kernel_vs_per_tuple_plan():
    name = "Tax"
    rows = dataset_rows(name, rows_for(name))
    relation = relation_from_rows(DATASETS[name].header, rows)
    discoverer = DCDiscoverer(relation)
    discoverer.fit()
    space = discoverer.space
    indexes = discoverer.engine_state.indexes
    sigma = discoverer.dcs
    # The non-empty differential case: an FD-style rule the synthetic Tax
    # data deliberately breaks (same zip, different city occurs).
    from repro.predicates.parser import parse_dc
    from repro.dcs.denial_constraint import DenialConstraint

    broken = [
        DenialConstraint(parse_dc(text, space), space)
        for text in ("!(t.zip = t'.zip)",)
    ]
    workload = list(sigma) + broken

    table = ResultTable(
        "Verification — sweep-and-probe kernel vs per-tuple probe plan",
        ["dataset", "rows", "|Σ|", "plan", "probe ops", "violating pairs"],
        "verification_kernel.txt",
    )

    counting = _CountingProbes(indexes)
    per_tuple = {dc.mask: _per_tuple_pairs(dc, relation, indexes, counting)
                 for dc in workload}
    per_tuple_ops = counting.count
    per_tuple_found = sum(len(pairs) for pairs in per_tuple.values())

    verifier = Verifier(relation, indexes, space)
    kernel = {dc.mask: set(verifier.violating_pairs(dc)) for dc in workload}
    kernel_ops = verifier.probe_operations()
    kernel_found = verifier.counters["verification.violations_found"]

    # Differential: both plans enumerate the identical ordered pairs.
    assert kernel == per_tuple
    assert kernel_found == per_tuple_found
    # A discovered Σ holds on its own data; the broken rule does not.
    assert all(not kernel[dc.mask] for dc in sigma)
    assert all(kernel[dc.mask] for dc in broken)
    # The gated claim: strictly less probe work than the per-tuple plan.
    assert kernel_ops < per_tuple_ops, (
        f"kernel spent {kernel_ops} probe ops vs per-tuple {per_tuple_ops}"
    )

    table.add(
        name, len(relation), len(workload), "per-tuple", per_tuple_ops,
        per_tuple_found,
    )
    table.add(
        name, len(relation), len(workload), "kernel", kernel_ops, kernel_found
    )
    table.counters[f"{name} verification"] = dict(
        sorted(verifier.counters.items())
    ) | {"violations.per_tuple_probes": per_tuple_ops}
    table.finish(
        shape_notes=[
            f"kernel: {kernel_ops} probe ops vs per-tuple {per_tuple_ops} "
            f"({per_tuple_ops / kernel_ops:.1f}x less index work on "
            f"|Σ|={len(workload)}, {len(relation)} rows)",
        ]
    )
