"""Parallel evidence construction — wall-clock scaling over worker counts.

Not a paper figure: this benchmark tracks the repo's own worker-pool
execution layer (``workers=`` / ``--workers``).  It runs the Figure 5
insert-scaling workload (static bootstrap + one λ-ratio insert batch) at
``workers ∈ {1, 2, 4}``, records the wall clock and speedup of each
configuration for both the static ``fit`` and the incremental ``insert``,
and asserts the determinism contract: every worker count must produce a
byte-identical serialized state.

Speedup is hardware-bound — the JSON notes record ``os.cpu_count()`` so a
flat curve on a single-core box is attributable.  Scale the workload with
``REPRO_BENCH_SCALE`` as usual.
"""

import json
import os

from _harness import (
    ResultTable,
    clone_discoverer,
    fitted_state_payload,
    insert_workload,
    timed,
)

from repro.core.discoverer import DCDiscoverer
from repro.core.state_io import state_to_dict
from repro.relational.loader import relation_from_rows
from repro.workloads import DATASETS

DATASET = "Tax"
RATIO = 0.3
WORKER_COUNTS = (1, 2, 4)


def test_parallel_scaling(benchmark):
    table = ResultTable(
        "Parallel evidence scaling — runtime (s) vs worker-pool size",
        ["dataset", "op", "workers", "seconds", "speedup"],
        "parallel_scaling.txt",
    )
    static_rows, delta_rows = insert_workload(DATASET, RATIO)
    payload = fitted_state_payload(DATASET, static_rows)

    fit_times = {}
    insert_times = {}
    states = {}
    for workers in WORKER_COUNTS:
        relation = relation_from_rows(DATASETS[DATASET].header, static_rows)
        discoverer = DCDiscoverer(relation, workers=workers)
        fit_result, fit_times[workers] = timed(discoverer.fit)
        table.add_phases(f"fit workers={workers}", fit_result)

        pooled = clone_discoverer(payload)
        pooled.workers = workers
        insert_result, insert_times[workers] = timed(
            lambda: pooled.insert(delta_rows)
        )
        table.add_phases(f"insert workers={workers}", insert_result)
        pooled.delete(sorted(pooled.relation.rids())[: len(delta_rows) // 2])
        states[workers] = json.dumps(state_to_dict(pooled))

    for workers in WORKER_COUNTS:
        table.add(
            DATASET, "fit", workers, fit_times[workers],
            round(fit_times[1] / fit_times[workers], 3),
        )
        table.add(
            DATASET, "insert", workers, insert_times[workers],
            round(insert_times[1] / insert_times[workers], 3),
        )

    # The determinism contract behind the speedup numbers: identical
    # bytes out of every worker count (fit + insert + delete paths).
    reference = states[WORKER_COUNTS[0]]
    assert all(states[workers] == reference for workers in WORKER_COUNTS)

    best = max(WORKER_COUNTS, key=lambda workers: fit_times[1] / fit_times[workers])
    table.finish(
        shape_notes=[
            f"cpu_count={os.cpu_count()} (speedup is hardware-bound; "
            "a single-core runner yields a flat curve)",
            f"best fit speedup {fit_times[1] / fit_times[best]:.2f}x "
            f"at workers={best}",
        ]
    )

    pooled = clone_discoverer(payload)
    pooled.workers = WORKER_COUNTS[-1]
    benchmark.pedantic(
        lambda: pooled.insert(delta_rows), rounds=1, iterations=1
    )
