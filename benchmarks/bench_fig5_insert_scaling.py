"""Figure 5 — scaling of 3DC and IncDC with increasing insert size.

Paper: ratio λ of incremental data swept from 0.1 % to 30 % on every
dataset; 3DC scales far better, IncDC grows steeply (and often fails).
Reproduction: λ sweep on a representative dataset mix; expected shape —
both algorithms grow with λ, 3DC remains below IncDC throughout, with the
gap largest on the datasets with many DCs.
"""

from _harness import (
    CELL_TIMEOUT,
    CellTimeout,
    ResultTable,
    SWEEP_DATASETS,
    clone_discoverer,
    fitted_state_payload,
    insert_workload,
    run_with_timeout,
    timed,
)

from repro.baselines import IncDC

RATIOS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.2, 0.3)


def test_fig5_insert_scaling(benchmark):
    table = ResultTable(
        "Figure 5 — insert-size scaling: runtime (s) vs ratio λ",
        ["dataset", "ratio", "|Δr|", "3DC", "IncDC"],
        "fig5_insert_scaling.txt",
    )
    monotone_gap = []
    for name in SWEEP_DATASETS:
        series_3dc = []
        series_incdc = []
        for ratio in RATIOS:
            static_rows, delta_rows = insert_workload(name, ratio)
            payload = fitted_state_payload(name, static_rows)

            discoverer = clone_discoverer(payload)
            result, t_3dc = timed(lambda: discoverer.insert(delta_rows))
            table.add_phases(f"{name} λ={ratio}", result)

            def run_incdc():
                base = clone_discoverer(payload)
                IncDC(base.relation, base.space, base.dc_masks).insert(delta_rows)

            try:
                _, t_incdc = run_with_timeout(run_incdc, CELL_TIMEOUT)
            except CellTimeout:
                t_incdc = None
            series_3dc.append(t_3dc)
            series_incdc.append(t_incdc)
            table.add(
                name, ratio, len(delta_rows), t_3dc,
                "—" if t_incdc is None else round(t_incdc, 3),
            )
        finished = [
            (three, inc)
            for three, inc in zip(series_3dc, series_incdc)
            if inc is not None
        ]
        monotone_gap.extend(three < inc for three, inc in finished)
        monotone_gap.extend(
            True for inc in series_incdc if inc is None
        )

    win_rate = sum(monotone_gap) / len(monotone_gap)
    table.finish(
        shape_notes=[
            f"3DC below IncDC in {win_rate:.0%} of sweep points "
            "(paper: everywhere, by orders of magnitude)",
        ]
    )
    assert win_rate >= 0.8

    static_rows, delta_rows = insert_workload(SWEEP_DATASETS[0], 0.1)
    payload = fitted_state_payload(SWEEP_DATASETS[0], static_rows)
    benchmark.pedantic(
        lambda: clone_discoverer(payload).insert(delta_rows),
        rounds=1, iterations=1,
    )
