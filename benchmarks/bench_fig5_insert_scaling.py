"""Figure 5 — scaling of 3DC and IncDC with increasing insert size.

Paper: ratio λ of incremental data swept from 0.1 % to 30 % on every
dataset; 3DC scales far better, IncDC grows steeply (and often fails).
Reproduction: λ sweep on a representative dataset mix; expected shape —
both algorithms grow with λ, 3DC remains below IncDC throughout, with the
gap largest on the datasets with many DCs.
"""

from _harness import (
    CELL_TIMEOUT,
    CellTimeout,
    ResultTable,
    SCALE,
    SWEEP_DATASETS,
    clone_discoverer,
    fitted_state_payload,
    geometric_speedup,
    insert_workload,
    run_with_timeout,
    timed,
)

from repro.baselines import IncDC
from repro.evidence.kernels import numpy_available

RATIOS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.2, 0.3)


def test_fig5_insert_scaling(benchmark):
    table = ResultTable(
        "Figure 5 — insert-size scaling: runtime (s) vs ratio λ",
        ["dataset", "ratio", "|Δr|", "3DC", "IncDC"],
        "fig5_insert_scaling.txt",
    )
    monotone_gap = []
    for name in SWEEP_DATASETS:
        series_3dc = []
        series_incdc = []
        for ratio in RATIOS:
            static_rows, delta_rows = insert_workload(name, ratio)
            payload = fitted_state_payload(name, static_rows)

            discoverer = clone_discoverer(payload)
            result, t_3dc = timed(lambda: discoverer.insert(delta_rows))
            table.add_phases(f"{name} λ={ratio}", result)

            def run_incdc():
                base = clone_discoverer(payload)
                IncDC(base.relation, base.space, base.dc_masks).insert(delta_rows)

            try:
                _, t_incdc = run_with_timeout(run_incdc, CELL_TIMEOUT)
            except CellTimeout:
                t_incdc = None
            series_3dc.append(t_3dc)
            series_incdc.append(t_incdc)
            table.add(
                name, ratio, len(delta_rows), t_3dc,
                "—" if t_incdc is None else round(t_incdc, 3),
            )
        finished = [
            (three, inc)
            for three, inc in zip(series_3dc, series_incdc)
            if inc is not None
        ]
        monotone_gap.extend(three < inc for three, inc in finished)
        monotone_gap.extend(
            True for inc in series_incdc if inc is None
        )

    win_rate = sum(monotone_gap) / len(monotone_gap)
    table.finish(
        shape_notes=[
            f"3DC below IncDC in {win_rate:.0%} of sweep points "
            "(paper: everywhere, by orders of magnitude)",
        ]
    )
    assert win_rate >= 0.8

    static_rows, delta_rows = insert_workload(SWEEP_DATASETS[0], 0.1)
    payload = fitted_state_payload(SWEEP_DATASETS[0], static_rows)
    benchmark.pedantic(
        lambda: clone_discoverer(payload).insert(delta_rows),
        rounds=1, iterations=1,
    )


def _evidence_construction_seconds(result) -> float:
    """Wall time of the evidence-construction phase (computing E_Δr) —
    the sub-span the kernel backend actually replaces.  Index bookkeeping
    and evidence application are backend-independent and excluded."""
    for child in result.report.root.children:
        if child.name == "evidence":
            for sub in child.children:
                if sub.name == "delta":
                    return sub.duration
    raise LookupError("no evidence/delta span in the run report")


def test_fig5_backend_speedup():
    """Addendum: vectorized vs pure-Python evidence kernel at the sweep's
    largest configured scale (λ = 0.3, scaled row counts).

    Each backend replays the identical insert from the same fitted
    snapshot; the deterministic work counters must agree exactly (the
    backends do the same logical work) and at full scale the vectorized
    kernel must cut evidence-construction wall time by ≥ 3× (geometric
    mean across the sweep datasets).
    """
    ratio = RATIOS[-1]
    table = ResultTable(
        f"Figure 5 addendum — evidence-kernel backend speedup at λ={ratio}",
        ["dataset", "|Δr|", "python (s)", "numpy (s)", "speedup"],
        "fig5_backend_speedup.txt",
    )
    pairs = []
    for name in SWEEP_DATASETS:
        static_rows, delta_rows = insert_workload(name, ratio)
        payload = fitted_state_payload(name, static_rows)
        times = {}
        counters = {}
        for backend in ("python", "numpy") if numpy_available() else ("python",):
            best = None
            for _ in range(5):
                discoverer = clone_discoverer(payload)
                discoverer.backend = backend
                result = discoverer.insert(list(delta_rows))
                elapsed = _evidence_construction_seconds(result)
                best = elapsed if best is None else min(best, elapsed)
            times[backend] = best
            counters[backend] = {
                key: value
                for key, value in result.report.metrics["counters"].items()
                if key.startswith("evidence.")
            }
            table.add_counters(f"{name} backend={backend}", result)
        if not numpy_available():
            table.add(name, len(delta_rows), times["python"], "—", "—")
            continue
        assert counters["python"] == counters["numpy"], (
            f"{name}: deterministic work counters diverge across backends"
        )
        pairs.append((times["python"], times["numpy"]))
        table.add(
            name,
            len(delta_rows),
            times["python"],
            times["numpy"],
            round(times["python"] / times["numpy"], 2),
        )
    speedup = geometric_speedup(pairs)
    table.finish(
        shape_notes=[
            f"geometric-mean evidence-construction speedup {speedup:.2f}x "
            f"at λ={ratio}, scale={SCALE:g} "
            "(gate: ≥ 3x at full scale with NumPy)",
        ]
    )
    if numpy_available() and SCALE >= 1.0:
        assert speedup >= 3.0, (
            f"vectorized kernel speedup {speedup:.2f}x below the 3x bar"
        )
