"""Distributed evidence construction — pair-grid scaling over executors.

Not a paper figure: this benchmark tracks the shard-grid executor layer
(``--executor`` / ``DCDiscoverer(executor=)``, docs/distributed.md) on a
relation 10× the Figure 5 experiment's size.  It times the static
evidence build three ways:

- the plain serial path (no grid) as the absolute reference;
- the pair grid executed in-process by one worker (``executor="serial"``),
  the 1-worker point of the scaling curve;
- the pair grid on the resolved process executor at 2 and 4 workers.

All shard counts are pinned to the 4-worker grid so the curve measures
worker scaling, not grid-size effects.  Every configuration must produce
the same canonical evidence bytes (evidence multiset + tuple index) —
the determinism contract behind the speedup numbers.

Speedup is hardware-bound: the ≥3× acceptance bar at 4 workers is only
asserted when ``os.cpu_count() >= 4`` (the bench_parallel_scaling
precedent — a single-core runner records a flat or inverted curve, and
the JSON notes say so).  The artifact
``results/distributed_scaling.json`` is uploaded by the CI ``distributed``
job; ``tests/test_executors.py`` pins its shape.
"""

import json
import os

from _harness import BASE_ROWS, RESULTS_DIR, SCALE, timed

from repro.evidence.builder import build_evidence_state
from repro.evidence.executors import grid_shard_count, resolve_executor
from repro.predicates.space import build_predicate_space
from repro.relational.loader import relation_from_rows
from repro.workloads import DATASETS

DATASET = "Tax"
#: ≥10× the fig5 relation at the same ``REPRO_BENCH_SCALE`` knob.
FIG5_FACTOR = 10
WORKER_COUNTS = (1, 2, 4)


def rows_total() -> int:
    return max(800, int(BASE_ROWS[DATASET] * FIG5_FACTOR * SCALE))


def canonical_bytes(state) -> bytes:
    """Canonical serialization of everything the build produced: the
    evidence multiset plus the per-tuple index (owned evidence and
    partner bitmaps)."""
    payload = {
        "evidence": sorted(state.evidence.counts.items()),
        "owned": {
            rid: sorted(owned.items())
            for rid, owned in sorted(state.tuple_index.owned.items())
        },
        "partners": sorted(state.tuple_index.partners_of.items()),
    }
    return json.dumps(payload, sort_keys=True).encode()


def test_distributed_scaling(benchmark):
    total = rows_total()
    relation = relation_from_rows(
        DATASETS[DATASET].header, DATASETS[DATASET].rows(total, seed=0)
    )
    space = build_predicate_space(relation)
    n_items = len(relation)
    shards = grid_shard_count(WORKER_COUNTS[-1], n_items)
    executor = resolve_executor("auto")

    # Absolute reference: the serial path (workers=1 never enters the grid).
    serial_state, serial_seconds = timed(
        lambda: build_evidence_state(
            relation, space, maintain_tuple_index=True, workers=1
        )
    )
    reference = canonical_bytes(serial_state)

    rows = [
        {
            "mode": "serial-path",
            "executor": "serial-path",
            "workers": 1,
            "shards": 0,
            "evidence_seconds": round(serial_seconds, 4),
            "speedup_vs_one_worker": 1.0,
        }
    ]

    grid_seconds = {}
    byte_identical = True
    for workers in WORKER_COUNTS:
        # The 1-worker curve point is the same grid run in-process —
        # a pool of one would charge fork/ship overhead to the baseline
        # and flatter the speedup.
        name = "serial" if workers == 1 else executor
        state, grid_seconds[workers] = timed(
            lambda name=name, workers=workers: build_evidence_state(
                relation,
                space,
                maintain_tuple_index=True,
                # executor="serial" runs in-process regardless of the
                # worker count; 2 keeps should_parallelize() open.
                workers=max(workers, 2),
                executor=name,
                shards=shards,
            )
        )
        byte_identical &= canonical_bytes(state) == reference
        rows.append(
            {
                "mode": "grid",
                "executor": name,
                "workers": workers,
                "shards": shards,
                "evidence_seconds": round(grid_seconds[workers], 4),
                "speedup_vs_one_worker": round(
                    grid_seconds[WORKER_COUNTS[0]] / grid_seconds[workers], 3
                ),
            }
        )

    assert byte_identical, (
        "executor/grid builds diverged from the serial evidence bytes"
    )

    speedup_at_max = grid_seconds[WORKER_COUNTS[0]] / grid_seconds[
        WORKER_COUNTS[-1]
    ]
    cpu_count = os.cpu_count() or 1
    if cpu_count >= WORKER_COUNTS[-1]:
        assert speedup_at_max >= 3.0, (
            f"expected >=3x evidence speedup at {WORKER_COUNTS[-1]} workers "
            f"on a {cpu_count}-core host, measured {speedup_at_max:.2f}x"
        )

    notes = {
        "dataset": DATASET,
        "rows": total,
        "fig5_rows": max(40, int(BASE_ROWS[DATASET] * SCALE)),
        "fig5_factor": FIG5_FACTOR,
        "shards": shards,
        "grid_blocks": shards * (shards + 1) // 2,
        "executor": executor,
        "cpu_count": cpu_count,
        "byte_identical": byte_identical,
        "speedup_at_max_workers": round(speedup_at_max, 3),
        "speedup_asserted": cpu_count >= WORKER_COUNTS[-1],
        "serial_path_seconds": round(serial_seconds, 4),
        "comment": (
            "speedup is self-relative on the pinned pair grid; the "
            "serial-path row is the no-grid absolute reference "
            "(hardware-bound: a single-core runner yields a flat or "
            "inverted curve)"
        ),
    }

    payload = {
        "benchmark": "distributed_scaling",
        "title": (
            f"Distributed evidence scaling — {DATASET} x{total} rows, "
            f"{shards}-shard pair grid"
        ),
        "rows": rows,
        "notes": notes,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "distributed_scaling.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    lines = [payload["title"], "=" * len(payload["title"])]
    header = f"{'mode':<12}{'executor':<12}{'workers':>8}{'seconds':>10}{'speedup':>9}"
    lines += [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['mode']:<12}{row['executor']:<12}{row['workers']:>8}"
            f"{row['evidence_seconds']:>10.3f}"
            f"{row['speedup_vs_one_worker']:>8.2f}x"
        )
    lines.append(
        f"shape: cpu_count={cpu_count}, byte_identical={byte_identical}, "
        f"{speedup_at_max:.2f}x at {WORKER_COUNTS[-1]} workers"
    )
    text = "\n".join(lines)
    (RESULTS_DIR / "distributed_scaling.txt").write_text(text + "\n")
    print("\n" + text)

    benchmark.pedantic(
        lambda: build_evidence_state(
            relation,
            space,
            maintain_tuple_index=True,
            workers=WORKER_COUNTS[-1],
            executor=executor,
            shards=shards,
        ),
        rounds=1,
        iterations=1,
    )
