"""Figure 6 — scaling of 3DC and IncDC with the number of columns.

Paper: random column subsets of increasing size (10 k rows, λ = 0.1,
log-scale y); IncDC degrades steeply with |R| because more columns mean a
larger predicate space and far more DCs to index (|R| < |P| ≪ |Σ|), while
3DC only adds pipeline stages.  Reproduction: column subsets of the
20-column FD dataset and the 17-column Flight dataset; same λ; expected
shape — IncDC's growth outpaces 3DC's by an increasing factor.
"""

import random

from _harness import (
    CELL_TIMEOUT,
    CellTimeout,
    ResultTable,
    insert_workload,
    run_with_timeout,
    timed,
)

from repro.baselines import IncDC
from repro.core.discoverer import DCDiscoverer
from repro.relational.loader import relation_from_rows
from repro.workloads import DATASETS

COLUMN_COUNTS = (5, 8, 11, 14, 17, 20)
REPEATS = 3  # the paper averages ten random subsets; we scale down


def _measure(name, column_names, static_rows, delta_rows):
    header = DATASETS[name].header

    relation = relation_from_rows(header, static_rows)
    discoverer = DCDiscoverer(relation, column_names=column_names)
    discoverer.fit()
    _, t_3dc = timed(lambda: discoverer.insert(delta_rows))

    def run_incdc():
        base = relation_from_rows(header, static_rows)
        base_discoverer = DCDiscoverer(base, column_names=column_names)
        base_discoverer.fit()
        incdc = IncDC(
            base_discoverer.relation,
            base_discoverer.space,
            base_discoverer.dc_masks,
        )
        incdc.insert(delta_rows)

    try:
        _, t_incdc = run_with_timeout(run_incdc, CELL_TIMEOUT)
    except CellTimeout:
        t_incdc = None
    return t_3dc, t_incdc


def test_fig6_column_scaling(benchmark):
    table = ResultTable(
        "Figure 6 — column-count scaling (λ=0.1): runtime (s) vs |R|",
        ["dataset", "columns", "3DC", "IncDC"],
        "fig6_column_scaling.txt",
    )
    ratios = []
    for name in ("FD", "Flight"):
        header = DATASETS[name].header
        static_rows, delta_rows = insert_workload(name, 0.1)
        rng = random.Random(1)
        for n_columns in COLUMN_COUNTS:
            if n_columns > len(header):
                continue
            t3_samples, ti_samples = [], []
            for _ in range(REPEATS):
                columns = sorted(
                    rng.sample(range(len(header)), n_columns)
                )
                column_names = [header[i] for i in columns]
                t_3dc, t_incdc = _measure(
                    name, column_names, static_rows, delta_rows
                )
                t3_samples.append(t_3dc)
                if t_incdc is not None:
                    ti_samples.append(t_incdc)
            mean3 = sum(t3_samples) / len(t3_samples)
            meani = sum(ti_samples) / len(ti_samples) if ti_samples else None
            table.add(
                name, n_columns, mean3,
                "—" if meani is None else round(meani, 3),
            )
            if meani is not None:
                ratios.append((n_columns, meani / mean3))

    # Shape: IncDC/3DC ratio should grow with the column count.
    small = [r for c, r in ratios if c <= 8]
    large = [r for c, r in ratios if c >= 14]
    note = "insufficient finished cells to compare growth"
    dominated = all(r > 2.0 for _, r in ratios)
    if small and large:
        note = (
            f"IncDC/3DC ratio is {sum(small)/len(small):.1f}x at ≤8 cols "
            f"and {sum(large)/len(large):.1f}x at ≥14 cols — IncDC "
            "dominated throughout (paper: widening gap on a log scale; "
            "at this scale the ratio is large and roughly stable)"
        )
    table.finish(shape_notes=[note])
    assert dominated, "IncDC must be consistently slower across column counts"

    static_rows, delta_rows = insert_workload("FD", 0.1)
    benchmark.pedantic(
        lambda: _measure(
            "FD", list(DATASETS["FD"].header[:8]), static_rows, delta_rows
        ),
        rounds=1, iterations=1,
    )
